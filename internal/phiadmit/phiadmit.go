// Package phiadmit is the SLO-aware admission layer in front of the batch
// server (phiserve.Server) and the multi-card fleet (phifleet.Fleet). The
// serving tiers below it admit everything they are handed; past saturation
// that is the classic metastable-overload failure — queues grow without
// bound, every request waits longer than its deadline, and goodput
// collapses to zero even though the cards are running flat out. The
// controller keeps the system on the good side of that cliff with three
// mechanisms, all fed by the telemetry the serving tier already exports:
//
//   - Deadline attachment: every admitted request carries an absolute SLO
//     deadline (tenant-specific) into phiserve.SubmitWith, so a lane that
//     expires while queued is dropped at the next checkpoint instead of
//     burning a kernel pass on an answer nobody is waiting for.
//   - Door shedding: when the backend's sojourn estimate (queue depth ×
//     recent per-batch service time, see phiserve.EstimatedDelay) exceeds
//     the request's whole budget, admitting it cannot possibly meet the
//     SLO — the controller rejects with ErrShedOverload immediately, which
//     costs the client one RTT instead of one timed-out deadline.
//   - Brownout fairness: a hysteretic brownout state (enter when the delay
//     estimate crosses BrownoutEnter, exit only below BrownoutExit, so
//     shedding stops cleanly instead of flapping) switches on per-tenant
//     weighted fair queuing: token buckets refilled in proportion to
//     tenant weight share the configured capacity, so one hot tenant
//     exhausts its own bucket (ErrShedTenant) while the others' traffic
//     still fits — lowest-weight tenants shed first because their buckets
//     are smallest.
//
// The fourth overload guard, the shared fault-retry budget, lives in
// phiserve.RetryBudget and is wired via Resilience.Budget or
// phifleet.Config.RetryBudget; see there.
package phiadmit

import (
	"context"
	"errors"
	"sync"
	"time"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/phiserve"
	"phiopenssl/internal/phitrace"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/telemetry"
)

// Errors returned by Controller.Submit.
var (
	// ErrShedOverload rejects a request whose SLO cannot be met: the
	// backend's delay estimate already exceeds the whole budget.
	ErrShedOverload = errors.New("phiadmit: shed, queue delay exceeds SLO budget")
	// ErrShedTenant rejects a request because its tenant's fair-queuing
	// bucket is empty during a brownout: the tenant is over its weighted
	// share while the system is overloaded.
	ErrShedTenant = errors.New("phiadmit: shed, tenant over fair share in brownout")
	// ErrWorkloadDenied rejects a request whose workload kind is outside
	// its tenant's declared allow-list.
	ErrWorkloadDenied = errors.New("phiadmit: workload kind not allowed for tenant")
)

// Backend is the serving tier the controller fronts. Both *phiserve.Server
// and *phifleet.Fleet satisfy it.
type Backend interface {
	SubmitWork(ctx context.Context, w phiwork.Workload, in phiwork.Input, opts phiserve.SubmitOpts) (<-chan phiserve.Result, error)
	EstimatedDelay() time.Duration
}

// Tenant is one traffic class.
type Tenant struct {
	// ID is the tenant identifier callers pass to Submit.
	ID string
	// Weight is the tenant's share of Capacity during a brownout, relative
	// to the sum of all weights. <= 0 defaults to 1.
	Weight float64
	// SLO overrides Config.SLO for this tenant's requests; zero inherits.
	SLO time.Duration
	// Workloads is the tenant's workload allow-list: the kinds this
	// tenant may submit (a CA tenant signs, a terminator tenant does DHE
	// and private ops, a verifier tenant only public ops). Empty means
	// every kind. Submissions outside the list shed with
	// ErrWorkloadDenied before any other admission decision.
	Workloads []phiwork.Kind
}

// Config parameterizes a Controller.
type Config struct {
	// SLO is the default per-request latency budget: an admitted request
	// gets deadline now+SLO. Defaults to 50ms.
	SLO time.Duration
	// Tenants declares the traffic classes. Requests naming an undeclared
	// tenant (or "") share one implicit weight-1 class.
	Tenants []Tenant
	// Capacity is the admission rate (requests/second) the tenant buckets
	// share during a brownout; tenant i refills at Capacity*Weight_i/ΣW.
	// <= 0 disables fair queuing — brownout then only gates on the
	// per-request overload shed.
	Capacity float64
	// BurstWindow sizes each tenant's bucket: rate * BurstWindow tokens
	// (minimum 1), so a tenant can burst that far ahead of its rate before
	// shedding starts. Defaults to 100ms.
	BurstWindow time.Duration
	// BrownoutEnter is the backend delay estimate at which the controller
	// enters brownout (fair queuing switches on). Defaults to SLO/2.
	BrownoutEnter time.Duration
	// BrownoutExit is the estimate below which brownout ends. Must be
	// below BrownoutEnter (the gap is the hysteresis band that keeps the
	// controller from flapping at the threshold). Defaults to SLO/4.
	BrownoutExit time.Duration
	// Margin is the fraction of each request's budget held back as slack
	// for estimate error: admission requires estimate <= (1-Margin)*SLO.
	// The sojourn estimate is a point-in-time reading — between the door
	// decision and the batch's execution more work can seal ahead of it —
	// so admitting right up to the line lets the latency tail spill past
	// the SLO. Defaults to 0.2; negative disables the slack.
	Margin float64
	// Telemetry supplies the registry for the controller's metric set; nil
	// gets a private registry (Stats still works).
	Telemetry *telemetry.Telemetry
	// Journeys, when non-nil, makes the door the journey's starting point:
	// every Submit begins a journey (tenant, SLO, deadline attached), sheds
	// resolve it immediately with the shed outcome, and admissions carry it
	// into the backend. The recorder's SLO burn rate also feeds the
	// brownout loop (see BurnEnter), and brownout enter/exit transitions
	// trigger incident snapshots.
	Journeys *phitrace.Recorder
	// BurnEnter is the fleet-wide SLO burn rate (bad fraction over budget,
	// from Journeys' fast window) at or above which the controller enters
	// brownout even while the delay estimate looks healthy — the journey
	// stream notices deadline misses the point-in-time estimate cannot.
	// Zero defaults to 2 (burning twice the budget) when Journeys is set;
	// negative disables burn-fed brownout.
	BurnEnter float64
	// BurnExit is the burn rate the brownout exit condition additionally
	// requires (both the estimate and the burn must look healthy before
	// fair queuing switches off). Defaults to BurnEnter/2.
	BurnExit float64
	// Clock overrides time.Now for deterministic tests; nil uses real time.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = 100 * time.Millisecond
	}
	if c.BrownoutEnter <= 0 {
		c.BrownoutEnter = c.SLO / 2
	}
	if c.BrownoutExit <= 0 {
		c.BrownoutExit = c.BrownoutEnter / 2
	}
	if c.BrownoutExit >= c.BrownoutEnter {
		c.BrownoutExit = c.BrownoutEnter / 2
	}
	if c.Margin == 0 {
		c.Margin = 0.2
	}
	if c.Margin < 0 {
		c.Margin = 0
	}
	if c.BurnEnter == 0 && c.Journeys != nil {
		c.BurnEnter = 2
	}
	if c.BurnEnter < 0 {
		c.BurnEnter = 0
	}
	if c.BurnExit <= 0 || c.BurnExit >= c.BurnEnter {
		c.BurnExit = c.BurnEnter / 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// tenantState is one tenant's bucket and accounting, guarded by the
// controller's mutex.
type tenantState struct {
	id     string
	weight float64
	slo    time.Duration
	rate   float64 // tokens per second during brownout
	burst  float64
	tokens float64
	last   time.Time
	// allowed is the workload allow-list as a set; nil means every kind.
	allowed map[phiwork.Kind]bool

	admitted, shedOverload, shedTenant, shedWorkload int64

	mAdmitted, mShedOverload, mShedTenant, mShedWorkload *telemetry.Counter
}

// allows reports whether the tenant may submit kind k.
func (t *tenantState) allows(k phiwork.Kind) bool {
	return t.allowed == nil || t.allowed[k]
}

// refill lazily credits the bucket for the time since the last touch.
func (t *tenantState) refill(now time.Time) {
	if t.last.IsZero() {
		t.last = now
		return
	}
	dt := now.Sub(t.last).Seconds()
	if dt <= 0 {
		return
	}
	t.last = now
	t.tokens += dt * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
}

// Controller is the admission front end. One controller guards one
// backend; Submit is safe for concurrent use.
type Controller struct {
	cfg     Config
	backend Backend
	tel     *telemetry.Telemetry

	mu       sync.Mutex
	tenants  map[string]*tenantState
	fallback *tenantState // undeclared tenants share this class
	brownout bool
	enters   int64

	brownoutGauge *telemetry.Gauge
	brownoutCount *telemetry.Counter
	// byKind counts admissions per workload kind (otherKind catches
	// out-of-tree kinds); immutable after New.
	byKind    map[phiwork.Kind]*telemetry.Counter
	otherKind *telemetry.Counter
}

// New builds a controller in front of backend. The backend must already be
// constructed (it is Started and Closed by its owner, not the controller).
func New(backend Backend, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	tel := cfg.Telemetry
	if tel == nil || tel.Registry == nil {
		priv := telemetry.NewRegistry()
		if tel == nil {
			tel = &telemetry.Telemetry{Registry: priv}
		} else {
			tel = &telemetry.Telemetry{Registry: priv, Tracer: tel.Tracer}
		}
	}
	a := &Controller{
		cfg:     cfg,
		backend: backend,
		tel:     tel,
		tenants: make(map[string]*tenantState),
		brownoutGauge: tel.Registry.Gauge("phiadmit_brownout",
			"1 while the controller is in brownout (fair queuing enforced)"),
		brownoutCount: tel.Registry.Counter("phiadmit_brownout_enters_total",
			"transitions into brownout"),
	}
	a.tel.Registry.GaugeFunc("phiadmit_delay_estimate_seconds",
		"backend sojourn estimate the door last sheds against",
		func() float64 { return backend.EstimatedDelay().Seconds() })
	var sumW float64
	weights := make([]float64, len(cfg.Tenants))
	for i, tn := range cfg.Tenants {
		w := tn.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		sumW += w
	}
	// Undeclared traffic shares one weight-1 class, which also contributes
	// to the weight sum so declared tenants keep guaranteed shares even
	// when anonymous traffic shows up.
	sumW++
	for i, tn := range cfg.Tenants {
		a.tenants[tn.ID] = a.newTenant(tn.ID, weights[i], sumW, tn.SLO, tn.Workloads)
	}
	a.fallback = a.newTenant("_other", 1, sumW, 0, nil)
	// One admitted-counter row per canonical workload kind (pre-registered
	// so scrapes show zeros), plus a catch-all for out-of-tree kinds.
	a.byKind = make(map[phiwork.Kind]*telemetry.Counter, len(phiwork.Kinds())+1)
	mkKind := func(label string) *telemetry.Counter {
		return a.tel.Registry.Counter("phiadmit_workload_admitted_total",
			"requests admitted to the backend, by workload kind",
			"workload", label)
	}
	for _, k := range phiwork.Kinds() {
		a.byKind[k] = mkKind(string(k))
	}
	a.otherKind = mkKind("other")
	return a
}

func (a *Controller) newTenant(id string, w, sumW float64, slo time.Duration, kinds []phiwork.Kind) *tenantState {
	if slo <= 0 {
		slo = a.cfg.SLO
	}
	rate := 0.0
	if a.cfg.Capacity > 0 {
		rate = a.cfg.Capacity * w / sumW
	}
	burst := rate * a.cfg.BurstWindow.Seconds()
	if burst < 1 {
		burst = 1
	}
	var allowed map[phiwork.Kind]bool
	if len(kinds) > 0 {
		allowed = make(map[phiwork.Kind]bool, len(kinds))
		for _, k := range kinds {
			allowed[k] = true
		}
	}
	reg := a.tel.Registry
	return &tenantState{
		id:      id,
		weight:  w,
		slo:     slo,
		rate:    rate,
		burst:   burst,
		tokens:  burst, // start full: a cold system admits a burst cleanly
		allowed: allowed,
		mAdmitted: reg.Counter("phiadmit_admitted_total",
			"requests admitted to the backend", "tenant", id),
		mShedOverload: reg.Counter("phiadmit_shed_overload_total",
			"requests shed because the delay estimate exceeded their SLO budget",
			"tenant", id),
		mShedTenant: reg.Counter("phiadmit_shed_tenant_total",
			"requests shed by brownout fair queuing", "tenant", id),
		mShedWorkload: reg.Counter("phiadmit_shed_workload_total",
			"requests shed because the workload kind is outside the tenant allow-list",
			"tenant", id),
	}
}

// Telemetry returns the controller's telemetry bundle.
func (a *Controller) Telemetry() *telemetry.Telemetry { return a.tel }

// tenant resolves a tenant id to its state (the shared fallback class for
// undeclared ids). The tenants map is immutable after New, so the lookup
// itself needs no lock — only the tenantState fields do (a.mu).
func (a *Controller) tenant(id string) *tenantState {
	if t, ok := a.tenants[id]; ok {
		return t
	}
	return a.fallback
}

// Submit admits or sheds one private-key operation for the named tenant —
// the compat spelling of SubmitWork over the key's canonical rsa-priv
// workload.
func (a *Controller) Submit(ctx context.Context, tenant string, key *rsakit.PrivateKey, c bn.Nat) (<-chan phiserve.Result, error) {
	if key == nil {
		return nil, errors.New("phiadmit: nil key")
	}
	return a.SubmitWork(ctx, tenant, phiwork.RSAPrivateFor(key), phiwork.Input{A: c})
}

// SubmitWork admits or sheds one request of any workload kind for the
// named tenant. On admission the request enters the backend with deadline
// now+SLO (the tenant's SLO) and the tenant id attached, and the returned
// channel delivers exactly one Result. A shed returns ErrWorkloadDenied,
// ErrShedOverload or ErrShedTenant without touching the backend — the
// cheapest possible rejection.
func (a *Controller) SubmitWork(ctx context.Context, tenant string, w phiwork.Workload, in phiwork.Input) (<-chan phiserve.Result, error) {
	if w == nil {
		return nil, errors.New("phiadmit: nil workload")
	}
	now := a.cfg.Clock()
	est := a.backend.EstimatedDelay()
	ts := a.tenant(tenant) // map is immutable; no lock needed for the lookup

	// The journey starts at the door: even a shed request leaves a record
	// naming the tenant, the workload, the SLO and the estimate that
	// condemned it. The burn rate comes from the same journey stream, read
	// before the lock — the recorder has its own (finer) lock discipline.
	var burn float64
	rec := a.cfg.Journeys
	if rec != nil && a.cfg.BurnEnter > 0 {
		burn = rec.BurnRate("", rec.FastWindow())
	}
	var journey *phitrace.Journey
	if rec != nil {
		journey = rec.BeginWork(ts.id, w.Tag(), string(w.Kind()), now.Add(ts.slo), ts.slo)
		journey.Event("workload", -1, string(w.Kind()))
		journey.Event("door", -1, "est="+est.Round(time.Microsecond).String())
	}
	// The allow-list gate comes first: a denied kind is a configuration
	// violation, not a load signal, so it neither charges the tenant's
	// bucket nor counts toward overload shedding.
	if !ts.allows(w.Kind()) {
		a.mu.Lock()
		ts.shedWorkload++
		a.mu.Unlock()
		ts.mShedWorkload.Inc()
		journey.Finish(phitrace.OutcomeShedTenant, "workload denied: "+string(w.Kind()))
		return nil, ErrWorkloadDenied
	}

	a.mu.Lock()
	// Hysteresis: enter at the high threshold, leave only below the low
	// one. Between the two the current state holds, so the controller
	// cannot flap when the estimate hovers at a threshold. The SLO burn
	// rate is a second entry signal — sustained deadline misses show up in
	// the journey stream before the point-in-time estimate looks scary —
	// and exit additionally requires the burn to have cooled.
	transition := ""
	enter := est >= a.cfg.BrownoutEnter ||
		(a.cfg.BurnEnter > 0 && burn >= a.cfg.BurnEnter)
	exit := est <= a.cfg.BrownoutExit &&
		(a.cfg.BurnEnter <= 0 || burn <= a.cfg.BurnExit)
	if !a.brownout && enter {
		a.brownout = true
		a.enters++
		a.brownoutGauge.Set(1)
		a.brownoutCount.Inc()
		transition = "enter"
	} else if a.brownout && exit {
		a.brownout = false
		a.brownoutGauge.Set(0)
		transition = "exit"
	}
	// Overload shed: if the backlog alone eats the budget (less the error
	// margin), the request cannot finish in time — reject now.
	if float64(est) > float64(ts.slo)*(1-a.cfg.Margin) {
		ts.shedOverload++
		a.mu.Unlock()
		ts.mShedOverload.Inc()
		journey.Finish(phitrace.OutcomeShedOverload, "est="+est.Round(time.Microsecond).String())
		a.noteBrownout(transition, est, burn)
		return nil, ErrShedOverload
	}
	// Brownout fair queuing: while overloaded, each tenant spends tokens
	// refilled at its weighted share of Capacity. Outside brownout the
	// buckets refill but are not charged, so light load is never shaped.
	charged := false
	if a.brownout && ts.rate > 0 {
		ts.refill(now)
		if ts.tokens < 1 {
			ts.shedTenant++
			a.mu.Unlock()
			ts.mShedTenant.Inc()
			journey.Finish(phitrace.OutcomeShedTenant, "brownout fair queue")
			a.noteBrownout(transition, est, burn)
			return nil, ErrShedTenant
		}
		ts.tokens--
		charged = true
	}
	deadline := now.Add(ts.slo)
	a.mu.Unlock()
	a.noteBrownout(transition, est, burn)

	ch, err := a.backend.SubmitWork(ctx, w, in, phiserve.SubmitOpts{
		Tenant:   ts.id,
		Deadline: deadline,
		Journey:  journey,
	})
	if err != nil {
		// The backend refused (closed, canceled, its own shed): the
		// request never entered, so the token it was charged comes back.
		if charged {
			a.mu.Lock()
			ts.tokens++
			a.mu.Unlock()
		}
		journey.Finish(phiserve.JourneyOutcome(err), err.Error())
		return nil, err
	}
	a.mu.Lock()
	ts.admitted++
	a.mu.Unlock()
	ts.mAdmitted.Inc()
	if m, ok := a.byKind[w.Kind()]; ok {
		m.Inc()
	} else {
		a.otherKind.Inc()
	}
	return ch, nil
}

// noteBrownout triggers the brownout incident snapshot after a.mu is
// released — the trigger samples the whole registry, and exposition calls
// gauge closures that may take other locks.
func (a *Controller) noteBrownout(transition string, est time.Duration, burn float64) {
	if transition == "" || a.cfg.Journeys == nil {
		return
	}
	a.cfg.Journeys.Trigger("brownout-"+transition, map[string]any{
		"est_ms": float64(est) / float64(time.Millisecond),
		"burn":   burn,
	})
}

// Do is the synchronous convenience wrapper: Submit then wait.
func (a *Controller) Do(ctx context.Context, tenant string, key *rsakit.PrivateKey, c bn.Nat) (phiserve.Result, error) {
	ch, err := a.Submit(ctx, tenant, key, c)
	if err != nil {
		return phiserve.Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return phiserve.Result{}, ctx.Err()
	}
}

// DoWork is the synchronous convenience wrapper over SubmitWork.
func (a *Controller) DoWork(ctx context.Context, tenant string, w phiwork.Workload, in phiwork.Input) (phiserve.Result, error) {
	ch, err := a.SubmitWork(ctx, tenant, w, in)
	if err != nil {
		return phiserve.Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return phiserve.Result{}, ctx.Err()
	}
}

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	ID                                               string
	Weight                                           float64
	Admitted, ShedOverload, ShedTenant, ShedWorkload int64
}

// Stats is a snapshot of the controller's admission decisions.
type Stats struct {
	// Brownout reports whether fair queuing is currently enforced.
	Brownout bool
	// BrownoutEnters counts transitions into brownout.
	BrownoutEnters int64
	// Tenants lists per-tenant accounting in declaration order, with the
	// implicit "_other" class last.
	Tenants []TenantStats
	// Admitted / Shed are the totals across tenants.
	Admitted, Shed int64
}

// Stats snapshots the controller.
func (a *Controller) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{Brownout: a.brownout, BrownoutEnters: a.enters}
	add := func(t *tenantState) {
		st.Tenants = append(st.Tenants, TenantStats{
			ID: t.id, Weight: t.weight,
			Admitted: t.admitted, ShedOverload: t.shedOverload,
			ShedTenant: t.shedTenant, ShedWorkload: t.shedWorkload,
		})
		st.Admitted += t.admitted
		st.Shed += t.shedOverload + t.shedTenant + t.shedWorkload
	}
	for _, tn := range a.cfg.Tenants {
		add(a.tenants[tn.ID])
	}
	add(a.fallback)
	return st
}
