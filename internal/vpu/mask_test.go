package vpu

import "testing"

func TestMaskShifts(t *testing.T) {
	u := New()
	m := Mask(0b1000_0000_0000_0001)
	if got := u.MaskShiftL(m, 1); got != 0b0000_0000_0000_0010 {
		t.Errorf("MaskShiftL = %#b", got)
	}
	if got := u.MaskShiftR(m, 15); got != 0b1 {
		t.Errorf("MaskShiftR = %#b", got)
	}
	if got := u.MaskShiftL(m, 16); got != 0 {
		t.Errorf("MaskShiftL(16) = %#b", got)
	}
	if got := u.MaskShiftR(m, 20); got != 0 {
		t.Errorf("MaskShiftR(20) = %#b", got)
	}
	// Shifted-out bits vanish; MaskAll invariants.
	if got := u.MaskShiftL(MaskAll, 4); got != Mask(0b1111_1111_1111_0000) {
		t.Errorf("MaskShiftL(all,4) = %#b", got)
	}
}

func TestMaskLogic(t *testing.T) {
	u := New()
	if u.MaskAnd(0b1100, 0b1010) != 0b1000 {
		t.Error("MaskAnd")
	}
	if u.MaskOr(0b1100, 0b0011) != 0b1111 {
		t.Error("MaskOr")
	}
	if u.MaskNonzero(0) || !u.MaskNonzero(0b10) {
		t.Error("MaskNonzero")
	}
	// All mask ops are metered in ClassMask.
	u.Reset()
	u.MaskAnd(1, 2)
	u.MaskOr(1, 2)
	u.MaskShiftL(1, 1)
	u.MaskShiftR(1, 1)
	u.MaskNonzero(1)
	if got := u.Counts()[ClassMask]; got != 5 {
		t.Errorf("mask ops metered %d, want 5", got)
	}
}

func TestCrossRegisterOpsMetered(t *testing.T) {
	u := New()
	v := u.BroadcastScalar(7)
	for i := range v {
		if v[i] != 7 {
			t.Fatal("BroadcastScalar lanes wrong")
		}
	}
	u.Extract(v, 3)
	u.Insert(v, 2, 9)
	if got := u.Counts()[ClassCross]; got != 3 {
		t.Errorf("cross ops metered %d, want 3", got)
	}
	// Memory-operand broadcast is NOT a crossing op.
	u.Reset()
	u.Broadcast(1)
	if u.Counts()[ClassCross] != 0 || u.Counts()[ClassShuffle] != 1 {
		t.Error("Broadcast should be shuffle-class")
	}
}

func TestStall(t *testing.T) {
	u := New()
	u.Stall(24)
	u.Stall(0)
	if got := u.Counts()[ClassStall]; got != 24 {
		t.Errorf("stall cycles = %d", got)
	}
	var nilU *Unit
	nilU.Stall(5) // must not panic
}
