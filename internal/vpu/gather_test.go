package vpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGatherBasics(t *testing.T) {
	u := New()
	base := make([]uint32, 100)
	for i := range base {
		base[i] = uint32(1000 + i)
	}
	var idx Vec
	for i := range idx {
		idx[i] = uint32(i * 3)
	}
	out := u.Gather(base, idx, MaskAll)
	for i := 0; i < Lanes; i++ {
		if out[i] != uint32(1000+i*3) {
			t.Fatalf("lane %d = %d", i, out[i])
		}
	}
	// Masked-off lanes read zero.
	out = u.Gather(base, idx, 0b101)
	if out[0] == 0 || out[1] != 0 || out[2] == 0 || out[3] != 0 {
		t.Fatalf("masked gather = %v", out)
	}
	// Out-of-range indices read zero.
	idx[5] = 1 << 20
	out = u.Gather(base, idx, MaskAll)
	if out[5] != 0 {
		t.Fatal("out-of-range index should read zero")
	}
}

func TestScatterBasics(t *testing.T) {
	u := New()
	base := make([]uint32, 64)
	var idx, v Vec
	for i := range idx {
		idx[i] = uint32(63 - i)
		v[i] = uint32(i + 1)
	}
	u.Scatter(base, idx, v, MaskAll)
	for i := 0; i < Lanes; i++ {
		if base[63-i] != uint32(i+1) {
			t.Fatalf("base[%d] = %d", 63-i, base[63-i])
		}
	}
	// Duplicate indices: ascending lane order wins (last lane).
	base2 := make([]uint32, 8)
	var dupIdx, dupV Vec
	for i := range dupIdx {
		dupIdx[i] = 3
		dupV[i] = uint32(i)
	}
	u.Scatter(base2, dupIdx, dupV, MaskAll)
	if base2[3] != Lanes-1 {
		t.Fatalf("duplicate-index tie-break: base[3] = %d, want %d", base2[3], Lanes-1)
	}
	// Masked and out-of-range lanes do not write.
	before := append([]uint32{}, base2...)
	dupIdx[0] = 1 << 20
	u.Scatter(base2, dupIdx, dupV, 0b1)
	for i := range base2 {
		if base2[i] != before[i] {
			t.Fatal("masked/oob scatter wrote")
		}
	}
}

func TestGatherCostModel(t *testing.T) {
	// All indices in one cache line: one memory op. Spread across 16
	// lines: 16 memory ops. This is the KNC vgatherdd iteration rule.
	u := New()
	var sameLine Vec
	for i := range sameLine {
		sameLine[i] = uint32(i) // indices 0..15 = one 64-byte line
	}
	base := make([]uint32, 1024)
	u.Gather(base, sameLine, MaskAll)
	if got := u.Counts()[ClassMem]; got != 1 {
		t.Fatalf("same-line gather cost %d mem ops, want 1", got)
	}
	u.Reset()
	var spread Vec
	for i := range spread {
		spread[i] = uint32(i * cacheLineDwords)
	}
	u.Gather(base, spread, MaskAll)
	if got := u.Counts()[ClassMem]; got != Lanes {
		t.Fatalf("spread gather cost %d mem ops, want %d", got, Lanes)
	}
	// Empty mask still issues once.
	u.Reset()
	u.Gather(base, spread, 0)
	if got := u.Counts()[ClassMem]; got != 1 {
		t.Fatalf("empty-mask gather cost %d, want 1", got)
	}
	// Scatter uses the same rule.
	u.Reset()
	u.Scatter(base, spread, Vec{}, MaskAll)
	if got := u.Counts()[ClassMem]; got != Lanes {
		t.Fatalf("spread scatter cost %d, want %d", got, Lanes)
	}
}

// Property: scatter followed by gather round-trips for distinct in-range
// indices.
func TestQuickScatterGatherRoundTrip(t *testing.T) {
	u := New()
	rng := rand.New(rand.NewSource(1))
	f := func(v Vec, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(256)
		var idx Vec
		for i := range idx {
			idx[i] = uint32(perm[i]) // distinct indices
		}
		base := make([]uint32, 256)
		u.Scatter(base, idx, v, MaskAll)
		out := u.Gather(base, idx, MaskAll)
		return out == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
