package vpu

// Gather/scatter. KNC's vgatherdd/vscatterdd are iterative: each issue of
// the instruction services the lanes whose indices fall in one cache line
// and clears their mask bits, so the cost is one memory op per *distinct
// cache line* touched rather than per lane. That cost model is what made
// the cache-line-interleaved table layouts of constant-time
// exponentiation attractive on the Phi, and it is reproduced here: both
// ops charge ClassMem once per distinct 64-byte line covered by the
// selected lanes (minimum one).

// cacheLineDwords is the number of 32-bit elements per 64-byte line.
const cacheLineDwords = 16

// distinctLines counts the distinct cache lines covered by the selected
// indices.
func distinctLines(idx Vec, m Mask) uint64 {
	var lines [Lanes]int64
	n := 0
	for i := 0; i < Lanes; i++ {
		if m>>i&1 == 0 {
			continue
		}
		line := int64(idx[i] / cacheLineDwords)
		seen := false
		for j := 0; j < n; j++ {
			if lines[j] == line {
				seen = true
				break
			}
		}
		if !seen {
			lines[n] = line
			n++
		}
	}
	if n == 0 {
		n = 1 // the instruction still issues once
	}
	return uint64(n)
}

// Gather models vgatherdd: out[i] = base[idx[i]] for lanes selected by m;
// unselected lanes are zero. Indices past the end of base read zero (the
// simulator's segments are bounds-checked; real code never does this).
func (u *Unit) Gather(base []uint32, idx Vec, m Mask) Vec {
	u.tick(ClassMem, distinctLines(idx, m))
	var out Vec
	for i := 0; i < Lanes; i++ {
		if m>>i&1 == 0 {
			continue
		}
		if int(idx[i]) < len(base) {
			out[i] = base[idx[i]]
		}
	}
	return u.inject(out)
}

// Scatter models vscatterdd: base[idx[i]] = v[i] for lanes selected by m.
// Lanes with equal indices write in ascending lane order (the architectural
// tie-break). Out-of-range indices are dropped.
func (u *Unit) Scatter(base []uint32, idx Vec, v Vec, m Mask) {
	u.tick(ClassMem, distinctLines(idx, m))
	v = u.inject(v) // a flip on the store port corrupts the scattered data
	for i := 0; i < Lanes; i++ {
		if m>>i&1 == 0 {
			continue
		}
		if int(idx[i]) < len(base) {
			base[idx[i]] = v[i]
		}
	}
}
