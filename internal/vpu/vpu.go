// Package vpu simulates the 512-bit vector processing unit of the Intel Xeon
// Phi (Knights Corner) coprocessor.
//
// KNC's vector ISA (IMCI, the pre-AVX-512 "Initial Many Core Instructions")
// operates on sixteen 32-bit lanes per register with 16-bit write/carry
// masks. This package models the subset of IMCI that the PhiOpenSSL kernels
// use: lane-wise integer arithmetic including the carry-producing adds
// (vpaddsetcd / vpadcd), 32x32 high/low multiplies (vpmulhud / vpmulld),
// the lane-concatenating shift (valignd), broadcasts, blends and permutes.
//
// Every operation executed through a Unit is metered: the Unit records how
// many instructions of each Class were issued. internal/knc converts those
// counts into simulated cycles using a calibrated cost table, which is how
// the reproduction compares the vectorized PhiOpenSSL kernels against the
// scalar baselines without KNC hardware. The simulation is bit-exact: the
// kernels built on this package are validated limb-for-limb against the
// scalar reference in internal/bn.
package vpu

// Lanes is the number of 32-bit lanes in a 512-bit vector register.
const Lanes = 16

// Vec is one 512-bit vector register: sixteen 32-bit lanes, lane 0 first.
type Vec [Lanes]uint32

// Mask is a 16-bit lane mask (bit i corresponds to lane i), as produced by
// the carry/borrow-generating instructions and consumed by masked ops.
type Mask uint16

// MaskAll has every lane selected.
const MaskAll Mask = 1<<Lanes - 1

// Class partitions instructions by their execution cost on KNC's vector
// pipeline. internal/knc assigns per-class cycle costs.
type Class uint8

// Instruction classes.
const (
	// ClassALU covers single-cycle lane-wise integer ops (add, sub, logic).
	ClassALU Class = iota
	// ClassMul covers the 32x32 multiply ops, which have longer latency on
	// KNC's VPU.
	ClassMul
	// ClassShuffle covers cross-lane data movement (valignd, vpermd,
	// broadcast from register).
	ClassShuffle
	// ClassMem covers vector loads/stores and lane extraction through
	// memory (KNC has no direct register lane extract).
	ClassMem
	// ClassMask covers mask-register manipulation (kand, kshift, kortest).
	ClassMask
	// ClassScalar covers scalar helper ops issued by the vector kernels
	// (e.g. the single 32x32 scalar multiply computing the Montgomery
	// quotient digit), which stall KNC's in-order pipe.
	ClassScalar
	// ClassCross covers vector<->scalar register transfers. KNC has no
	// direct move between the register files: the value round-trips
	// through the L1, costing a store-to-load forward plus pipeline
	// bubbles. The per-digit quotient extraction of the Montgomery kernel
	// lives here, which is why small operands vectorize poorly.
	ClassCross
	// ClassStall accounts dependency-stall cycles explicitly charged by a
	// kernel (e.g. vector-latency exposure when too few independent
	// vectors are in flight to cover the 4-cycle VPU latency).
	ClassStall
	// NumClasses is the number of instruction classes.
	NumClasses
)

// String implements fmt.Stringer for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassShuffle:
		return "shuffle"
	case ClassMem:
		return "mem"
	case ClassMask:
		return "mask"
	case ClassScalar:
		return "scalar"
	case ClassCross:
		return "cross"
	case ClassStall:
		return "stall"
	default:
		return "unknown"
	}
}

// Counts records the number of instructions issued per class.
type Counts [NumClasses]uint64

// Total returns the total instruction count across classes.
func (c Counts) Total() uint64 {
	var sum uint64
	for _, v := range c {
		sum += v
	}
	return sum
}

// Add returns the element-wise sum of two count vectors.
func (c Counts) Add(o Counts) Counts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Phase is an attribution slot for instruction counts. Besides the global
// per-class meter, a Unit keeps one Counts vector per phase; a kernel
// brackets each algorithmic stage with SetPhase so the cost model can
// answer "where did the cycles go?" (multiply vs Montgomery reduce vs
// window lookup vs CRT recombine). Phase 0 is the default, unattributed
// slot. The phase *names* are policy and live with the kernels
// (internal/vbatch); this package only provides the slots.
type Phase uint8

// MaxPhases is the number of attribution slots a Unit carries.
const MaxPhases = 8

// Corruptor observes every vector result the Unit produces and may mutate
// it in place. It is the hook through which internal/faultsim injects
// per-lane bit-flips: the injector decides (deterministically, from its
// seed) which instruction results to corrupt, modelling soft errors in the
// VPU's lane datapaths. A nil Corruptor means fault-free execution.
type Corruptor interface {
	CorruptVec(v *Vec)
}

// Unit is one simulated VPU. A Unit is not safe for concurrent use; each
// simulated hardware thread owns its own Unit.
type Unit struct {
	counts Counts
	phase  Phase
	phases [MaxPhases]Counts
	fault  Corruptor
}

// AttachFaults installs a fault injector on the Unit (nil detaches). Every
// subsequent vector result — arithmetic, shuffle, load and store data —
// passes through the injector before the kernel sees it.
func (u *Unit) AttachFaults(c Corruptor) {
	if u != nil {
		u.fault = c
	}
}

// inject routes one instruction's vector result through the attached fault
// injector. Mask results are not corruptible: IMCI mask registers live in
// the scalar core's k-file, outside the modelled lane datapaths.
func (u *Unit) inject(v Vec) Vec {
	if u != nil && u.fault != nil {
		u.fault.CorruptVec(&v)
	}
	return v
}

// New returns a fresh VPU with zeroed meters.
func New() *Unit { return &Unit{} }

// Counts returns the instruction counts issued so far.
func (u *Unit) Counts() Counts { return u.counts }

// SetPhase selects the attribution slot for subsequent instructions and
// returns the previous phase, so nested kernels can save/restore:
//
//	prev := u.SetPhase(PhaseMul)
//	defer u.SetPhase(prev)
//
// Out-of-range phases fall back to slot 0. Safe on a nil Unit.
func (u *Unit) SetPhase(p Phase) Phase {
	if u == nil {
		return 0
	}
	prev := u.phase
	if p >= MaxPhases {
		p = 0
	}
	u.phase = p
	return prev
}

// PhaseCounts returns the per-phase instruction counts issued so far. The
// element-wise sum over phases equals Counts() exactly: every tick lands
// in precisely one slot.
func (u *Unit) PhaseCounts() [MaxPhases]Counts {
	if u == nil {
		return [MaxPhases]Counts{}
	}
	return u.phases
}

// Reset zeroes the meters, including the per-phase slots, and returns the
// phase selector to 0.
func (u *Unit) Reset() {
	u.counts = Counts{}
	u.phases = [MaxPhases]Counts{}
	u.phase = 0
}

// tick records n instructions of class c in the global meter and in the
// current phase slot. A nil Unit executes unmetered, which keeps
// pure-function tests cheap.
func (u *Unit) tick(c Class, n uint64) {
	if u != nil {
		u.counts[c] += n
		u.phases[u.phase][c] += n
	}
}

// Stall charges n explicit dependency-stall cycles (see ClassStall).
func (u *Unit) Stall(n uint64) { u.tick(ClassStall, n) }
