package vpu

// Lane-wise arithmetic and logic (IMCI vector ALU and multiplier).
//
// Every vector result is routed through u.inject, the fault-injection hook
// (a no-op unless a Corruptor is attached; see AttachFaults).

// Add models vpaddd: lane-wise 32-bit addition, carries discarded.
func (u *Unit) Add(a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return u.inject(out)
}

// AddSetC models vpaddsetcd: lane-wise addition returning the sum and a
// mask of lanes that produced a carry out of bit 31.
func (u *Unit) AddSetC(a, b Vec) (Vec, Mask) {
	u.tick(ClassALU, 1)
	var out Vec
	var m Mask
	for i := range out {
		s := uint64(a[i]) + uint64(b[i])
		out[i] = uint32(s)
		m |= Mask(s>>32) << i
	}
	return u.inject(out), m
}

// Adc models vpadcd: lane-wise a + b + carryIn(lane), where carryIn
// contributes 1 to each lane whose mask bit is set, returning the sum and
// the carry-out mask.
func (u *Unit) Adc(a, b Vec, carryIn Mask) (Vec, Mask) {
	u.tick(ClassALU, 1)
	var out Vec
	var m Mask
	for i := range out {
		s := uint64(a[i]) + uint64(b[i]) + uint64((carryIn>>i)&1)
		out[i] = uint32(s)
		m |= Mask(s>>32) << i
	}
	return u.inject(out), m
}

// Sub models vpsubd: lane-wise subtraction a - b, borrows discarded.
func (u *Unit) Sub(a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return u.inject(out)
}

// SubSetB models vpsubsetbd: lane-wise a - b returning the difference and a
// mask of lanes that borrowed.
func (u *Unit) SubSetB(a, b Vec) (Vec, Mask) {
	u.tick(ClassALU, 1)
	var out Vec
	var m Mask
	for i := range out {
		d := uint64(a[i]) - uint64(b[i])
		out[i] = uint32(d)
		m |= Mask((d>>32)&1) << i
	}
	return u.inject(out), m
}

// Sbb models vpsbbd: lane-wise a - b - borrowIn(lane) with borrow-out mask.
func (u *Unit) Sbb(a, b Vec, borrowIn Mask) (Vec, Mask) {
	u.tick(ClassALU, 1)
	var out Vec
	var m Mask
	for i := range out {
		d := uint64(a[i]) - uint64(b[i]) - uint64((borrowIn>>i)&1)
		out[i] = uint32(d)
		m |= Mask((d>>32)&1) << i
	}
	return u.inject(out), m
}

// MulLo models vpmulld: lane-wise low 32 bits of a*b.
func (u *Unit) MulLo(a, b Vec) Vec {
	u.tick(ClassMul, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] * b[i]
	}
	return u.inject(out)
}

// MulHi models vpmulhud: lane-wise high 32 bits of the unsigned product a*b.
func (u *Unit) MulHi(a, b Vec) Vec {
	u.tick(ClassMul, 1)
	var out Vec
	for i := range out {
		out[i] = uint32(uint64(a[i]) * uint64(b[i]) >> 32)
	}
	return u.inject(out)
}

// And models vpandd.
func (u *Unit) And(a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] & b[i]
	}
	return u.inject(out)
}

// Or models vpord.
func (u *Unit) Or(a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return u.inject(out)
}

// Xor models vpxord.
func (u *Unit) Xor(a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return u.inject(out)
}

// ShlI models vpslld: lane-wise left shift by an immediate.
func (u *Unit) ShlI(a Vec, s uint) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	if s >= 32 {
		return u.inject(out)
	}
	for i := range out {
		out[i] = a[i] << s
	}
	return u.inject(out)
}

// ShrI models vpsrld: lane-wise logical right shift by an immediate.
func (u *Unit) ShrI(a Vec, s uint) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	if s >= 32 {
		return u.inject(out)
	}
	for i := range out {
		out[i] = a[i] >> s
	}
	return u.inject(out)
}

// CmpEq models vpcmpeqd with a mask destination: mask bit i set where
// a[i] == b[i].
func (u *Unit) CmpEq(a, b Vec) Mask {
	u.tick(ClassALU, 1)
	var m Mask
	for i := range a {
		if a[i] == b[i] {
			m |= 1 << i
		}
	}
	return m
}

// CmpLtU models vpcmpltud: mask bit i set where a[i] < b[i] (unsigned).
func (u *Unit) CmpLtU(a, b Vec) Mask {
	u.tick(ClassALU, 1)
	var m Mask
	for i := range a {
		if a[i] < b[i] {
			m |= 1 << i
		}
	}
	return m
}

// ScalarMul32 models the scalar 32x32→32 multiply the Montgomery kernels
// issue once per digit to form the quotient (executed on the scalar
// pipeline, metered in ClassScalar).
func (u *Unit) ScalarMul32(a, b uint32) uint32 {
	u.tick(ClassScalar, 1)
	return a * b
}
