package vpu

// Cross-lane data movement (IMCI shuffle unit).

// Align models valignd dst, hi, lo, imm: the 32-lane concatenation hi:lo is
// shifted right by imm lanes and the low 16 lanes are kept. Lane i of the
// result is lo[i+imm] when i+imm < 16, otherwise hi[i+imm-16].
// imm must be in [0, 16].
func (u *Unit) Align(hi, lo Vec, imm int) Vec {
	if imm < 0 || imm > Lanes {
		panic("vpu: Align immediate out of range")
	}
	u.tick(ClassShuffle, 1)
	var out Vec
	for i := 0; i < Lanes; i++ {
		j := i + imm
		if j < Lanes {
			out[i] = lo[j]
		} else {
			out[i] = hi[j-Lanes]
		}
	}
	return u.inject(out)
}

// Broadcast models the 1-to-16 broadcast with a memory operand
// (vbroadcastss {1to16}-style): the digit is read from memory and splatted
// in one shuffle-class op. Use BroadcastScalar for a value living in a
// scalar register.
func (u *Unit) Broadcast(x uint32) Vec {
	u.tick(ClassShuffle, 1)
	var out Vec
	for i := range out {
		out[i] = x
	}
	return u.inject(out)
}

// BroadcastScalar broadcasts from a scalar register. Like Extract, the
// value must cross register files through the L1, a ClassCross operation.
func (u *Unit) BroadcastScalar(x uint32) Vec {
	u.tick(ClassCross, 1)
	var out Vec
	for i := range out {
		out[i] = x
	}
	return u.inject(out)
}

// Permute models vpermd: out[i] = a[idx[i] & 15].
func (u *Unit) Permute(a, idx Vec) Vec {
	u.tick(ClassShuffle, 1)
	var out Vec
	for i := range out {
		out[i] = a[idx[i]&(Lanes-1)]
	}
	return u.inject(out)
}

// Blend models a masked vmovdqa32: lane i of the result is b[i] where the
// mask bit is set, a[i] otherwise.
func (u *Unit) Blend(m Mask, a, b Vec) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		if m>>i&1 == 1 {
			out[i] = b[i]
		} else {
			out[i] = a[i]
		}
	}
	return u.inject(out)
}

// MaskToVec materializes a carry mask as a vector with 1 in selected lanes
// and 0 elsewhere (vpsubrd with mask in real IMCI; one ALU op).
func (u *Unit) MaskToVec(m Mask) Vec {
	u.tick(ClassALU, 1)
	var out Vec
	for i := range out {
		out[i] = uint32(m >> i & 1)
	}
	return u.inject(out)
}

// Mask-register helpers (kand / kor / kortest equivalents).

// MaskAnd models kand.
func (u *Unit) MaskAnd(a, b Mask) Mask {
	u.tick(ClassMask, 1)
	return a & b
}

// MaskOr models kor.
func (u *Unit) MaskOr(a, b Mask) Mask {
	u.tick(ClassMask, 1)
	return a | b
}

// MaskShiftL models the KNC mask shift (kshiftl-equivalent via kmov +
// scalar shl on IMCI): shift the mask left by s bits (toward higher
// lanes), dropping bits past lane 15.
func (u *Unit) MaskShiftL(m Mask, s uint) Mask {
	u.tick(ClassMask, 1)
	if s >= Lanes {
		return 0
	}
	return (m << s) & MaskAll
}

// MaskShiftR models the right mask shift: toward lower lanes.
func (u *Unit) MaskShiftR(m Mask, s uint) Mask {
	u.tick(ClassMask, 1)
	if s >= Lanes {
		return 0
	}
	return m >> s
}

// MaskNonzero models kortest: reports whether any bit of m is set.
func (u *Unit) MaskNonzero(m Mask) bool {
	u.tick(ClassMask, 1)
	return m != 0
}
