package vpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand) Vec {
	var v Vec
	for i := range v {
		v[i] = rng.Uint32()
	}
	return v
}

func TestAddAndAddSetC(t *testing.T) {
	u := New()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(rng), randVec(rng)
		sum, m := u.AddSetC(a, b)
		plain := u.Add(a, b)
		for i := 0; i < Lanes; i++ {
			want := uint64(a[i]) + uint64(b[i])
			if sum[i] != uint32(want) || plain[i] != uint32(want) {
				t.Fatalf("lane %d: sum %#x, want %#x", i, sum[i], uint32(want))
			}
			if got := m >> i & 1; got != Mask(want>>32) {
				t.Fatalf("lane %d: carry %d, want %d", i, got, want>>32)
			}
		}
	}
}

func TestAdcPropagatesCarryIn(t *testing.T) {
	u := New()
	var a Vec
	for i := range a {
		a[i] = 0xffffffff
	}
	b := Vec{} // zero
	sum, m := u.Adc(a, b, MaskAll)
	for i := 0; i < Lanes; i++ {
		if sum[i] != 0 {
			t.Fatalf("lane %d: %#x, want 0", i, sum[i])
		}
	}
	if m != MaskAll {
		t.Fatalf("carry-out mask %#x, want all", m)
	}
	// No carry-in: no overflow.
	sum, m = u.Adc(a, b, 0)
	if m != 0 || sum != a {
		t.Fatalf("Adc without carry-in changed value: %v mask %#x", sum, m)
	}
}

func TestSubSetBAndSbb(t *testing.T) {
	u := New()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(rng), randVec(rng)
		var borrowIn Mask
		if trial%2 == 1 {
			borrowIn = Mask(rng.Uint32())
		}
		diff, m := u.Sbb(a, b, borrowIn)
		for i := 0; i < Lanes; i++ {
			want := uint64(a[i]) - uint64(b[i]) - uint64(borrowIn>>i&1)
			if diff[i] != uint32(want) {
				t.Fatalf("lane %d: diff %#x, want %#x", i, diff[i], uint32(want))
			}
			if got := m >> i & 1; got != Mask(want>>32&1) {
				t.Fatalf("lane %d: borrow %d", i, got)
			}
		}
	}
}

func TestMulHiLo(t *testing.T) {
	u := New()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(rng), randVec(rng)
		lo, hi := u.MulLo(a, b), u.MulHi(a, b)
		for i := 0; i < Lanes; i++ {
			p := uint64(a[i]) * uint64(b[i])
			if lo[i] != uint32(p) || hi[i] != uint32(p>>32) {
				t.Fatalf("lane %d: %#x:%#x, want %#x", i, hi[i], lo[i], p)
			}
		}
	}
}

func TestAlignSemantics(t *testing.T) {
	u := New()
	var lo, hi Vec
	for i := range lo {
		lo[i] = uint32(i)
		hi[i] = uint32(16 + i)
	}
	// Shift right by 1: lane i = combined[i+1].
	out := u.Align(hi, lo, 1)
	for i := 0; i < Lanes; i++ {
		want := uint32(i + 1)
		if out[i] != want {
			t.Fatalf("Align imm=1 lane %d = %d, want %d", i, out[i], want)
		}
	}
	// imm 0 is identity on lo; imm 16 is identity on hi.
	if u.Align(hi, lo, 0) != lo {
		t.Error("Align imm=0 should return lo")
	}
	if u.Align(hi, lo, Lanes) != hi {
		t.Error("Align imm=16 should return hi")
	}
	// Left-shift by one lane: Align(v, prev, 15).
	out = u.Align(lo, hi, 15)
	if out[0] != hi[15] {
		t.Errorf("left shift lane0 = %d, want %d", out[0], hi[15])
	}
	for i := 1; i < Lanes; i++ {
		if out[i] != lo[i-1] {
			t.Fatalf("left shift lane %d = %d, want %d", i, out[i], lo[i-1])
		}
	}
}

func TestAlignOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Align(17) should panic")
		}
	}()
	New().Align(Vec{}, Vec{}, 17)
}

func TestBroadcastPermuteBlend(t *testing.T) {
	u := New()
	bc := u.Broadcast(0xdead)
	for i := range bc {
		if bc[i] != 0xdead {
			t.Fatal("broadcast lane mismatch")
		}
	}
	var v, idx Vec
	for i := range v {
		v[i] = uint32(100 + i)
		idx[i] = uint32(Lanes - 1 - i)
	}
	p := u.Permute(v, idx)
	for i := range p {
		if p[i] != uint32(100+Lanes-1-i) {
			t.Fatal("permute mismatch")
		}
	}
	a, b := u.Broadcast(1), u.Broadcast(2)
	bl := u.Blend(0b0000000000000101, a, b)
	if bl[0] != 2 || bl[1] != 1 || bl[2] != 2 || bl[3] != 1 {
		t.Fatalf("blend = %v", bl)
	}
}

func TestMaskToVec(t *testing.T) {
	u := New()
	v := u.MaskToVec(0b1010)
	for i := range v {
		want := uint32(0)
		if i == 1 || i == 3 {
			want = 1
		}
		if v[i] != want {
			t.Fatalf("lane %d = %d, want %d", i, v[i], want)
		}
	}
}

func TestShifts(t *testing.T) {
	u := New()
	v := u.Broadcast(0x80000001)
	if got := u.ShlI(v, 1); got[0] != 2 {
		t.Errorf("ShlI = %#x", got[0])
	}
	if got := u.ShrI(v, 31); got[0] != 1 {
		t.Errorf("ShrI = %#x", got[0])
	}
	if got := u.ShlI(v, 32); got[0] != 0 {
		t.Errorf("ShlI 32 = %#x", got[0])
	}
}

func TestCompares(t *testing.T) {
	u := New()
	var a, b Vec
	a[0], b[0] = 1, 1
	a[1], b[1] = 1, 2
	a[2], b[2] = 3, 2
	if m := u.CmpEq(a, b); m&0b111 != 0b001 {
		t.Errorf("CmpEq low bits = %#b", m&7)
	}
	if m := u.CmpLtU(a, b); m&0b111 != 0b010 {
		t.Errorf("CmpLtU low bits = %#b", m&7)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	u := New()
	src := make([]uint32, 37) // not a multiple of 16: exercises padding
	for i := range src {
		src[i] = uint32(i * 3)
	}
	vs := u.LoadAll(src)
	if len(vs) != 3 {
		t.Fatalf("LoadAll produced %d vectors", len(vs))
	}
	// Padding lanes must be zero.
	for i := 37 % Lanes; i < Lanes; i++ {
		if vs[2][i] != 0 {
			t.Fatalf("padding lane %d nonzero", i)
		}
	}
	back := u.StoreAll(vs, 37)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("round trip limb %d: %d != %d", i, back[i], src[i])
		}
	}
}

func TestExtractInsert(t *testing.T) {
	u := New()
	v := u.Broadcast(7)
	v = u.Insert(v, 5, 99)
	if u.Extract(v, 5) != 99 || u.Extract(v, 4) != 7 {
		t.Fatal("Extract/Insert mismatch")
	}
}

func TestMetering(t *testing.T) {
	u := New()
	a, b := u.Broadcast(1), u.Broadcast(2) // 2 shuffle
	u.Add(a, b)                            // 1 alu
	u.MulLo(a, b)                          // 1 mul
	u.MulHi(a, b)                          // 1 mul
	u.Align(a, b, 3)                       // 1 shuffle
	u.Load([]uint32{1}, 0)                 // 1 mem
	u.MaskAnd(1, 2)                        // 1 mask
	u.ScalarMul32(3, 4)                    // 1 scalar
	c := u.Counts()
	want := Counts{}
	want[ClassALU] = 1
	want[ClassMul] = 2
	want[ClassShuffle] = 3
	want[ClassMem] = 1
	want[ClassMask] = 1
	want[ClassScalar] = 1
	if c != want {
		t.Fatalf("counts = %v, want %v", c, want)
	}
	if c.Total() != 9 {
		t.Fatalf("total = %d", c.Total())
	}
	u.Reset()
	if u.Counts().Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNilUnitUnmetered(t *testing.T) {
	var u *Unit
	// Must not panic; results still correct.
	v := u.Add(u.Broadcast(1), u.Broadcast(2))
	if v[0] != 3 {
		t.Fatalf("nil-unit Add = %d", v[0])
	}
}

// Property: AddSetC followed by subtraction recovers the operand, with the
// carry mask matching 64-bit reference arithmetic.
func TestQuickAddSubInverse(t *testing.T) {
	u := New()
	f := func(a, b Vec) bool {
		sum, _ := u.AddSetC(a, b)
		diff, _ := u.SubSetB(sum, b)
		return diff == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Align(hi, lo, k) then Align back reconstructs lo's upper lanes.
func TestQuickAlignConsistency(t *testing.T) {
	u := New()
	f := func(hi, lo Vec, kRaw uint8) bool {
		k := int(kRaw) % (Lanes + 1)
		out := u.Align(hi, lo, k)
		for i := 0; i < Lanes; i++ {
			j := i + k
			var want uint32
			if j < Lanes {
				want = lo[j]
			} else {
				want = hi[j-Lanes]
			}
			if out[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MulLo/MulHi reconstruct the full 64-bit product.
func TestQuickMulReconstruct(t *testing.T) {
	u := New()
	f := func(a, b Vec) bool {
		lo, hi := u.MulLo(a, b), u.MulHi(a, b)
		for i := 0; i < Lanes; i++ {
			if uint64(hi[i])<<32|uint64(lo[i]) != uint64(a[i])*uint64(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
