package vpu

import "testing"

// TestPhaseAttribution pins the phase-slot contract: every tick lands in
// exactly one slot, SetPhase save/restore works, out-of-range phases fall
// back to slot 0, and Reset clears the slots and the selector.
func TestPhaseAttribution(t *testing.T) {
	u := New()
	a := u.Broadcast(3)
	b := u.Broadcast(5)
	u.Add(a, b) // phase 0

	if prev := u.SetPhase(2); prev != 0 {
		t.Fatalf("SetPhase returned prev=%d, want 0", prev)
	}
	u.Add(a, b)
	u.MulLo(a, b)
	if prev := u.SetPhase(MaxPhases + 1); prev != 2 { // out of range -> slot 0
		t.Fatalf("SetPhase returned prev=%d, want 2", prev)
	}
	u.Add(a, b)

	phases := u.PhaseCounts()
	if phases[2][ClassALU] != 1 || phases[2][ClassMul] != 1 {
		t.Fatalf("phase 2 counts = %v", phases[2])
	}
	var sum Counts
	for _, pc := range phases {
		sum = sum.Add(pc)
	}
	if sum != u.Counts() {
		t.Fatalf("phase counts %v do not sum to Counts() %v", sum, u.Counts())
	}

	u.Reset()
	if u.PhaseCounts() != ([MaxPhases]Counts{}) || u.Counts() != (Counts{}) {
		t.Fatalf("Reset must clear phase slots")
	}
	u.Add(a, b)
	if u.PhaseCounts()[0][ClassALU] == 0 {
		t.Fatalf("Reset must return the selector to slot 0")
	}

	// Nil units stay inert.
	var nu *Unit
	if nu.SetPhase(3) != 0 || nu.PhaseCounts() != ([MaxPhases]Counts{}) {
		t.Fatalf("nil unit phase methods must be no-ops")
	}
}
