package vpu

// Backend is the seam separating what the kernels compute from how cycles
// are charged. Two implementations exist:
//
//   - Unit ("sim"): the interpreted VPU above — every instruction executes
//     lane by lane and meters itself. Cycle-exact, phase-attributed and
//     Corruptor-hookable at instruction granularity; the default for
//     benches, golden instruction-count tests and all EXPERIMENTS.
//   - Direct ("direct"): no instruction interpreter at all. Kernels built
//     on it (internal/vbatch) execute the same CIOS/fixed-window/CRT
//     schedule as straight uint64 limb arithmetic and charge this meter
//     from per-kernel cost deltas calibrated once against the sim, so the
//     reported Counts/PhaseCounts are identical to what the sim would have
//     measured — at a fraction of the host wall time. This is the serving
//     hot path.
//
// A Backend is not safe for concurrent use; each simulated hardware thread
// owns its own.
type Backend interface {
	// Kind identifies the implementation (BackendSim or BackendDirect).
	Kind() BackendKind
	// Counts returns the per-class instruction counts charged so far.
	Counts() Counts
	// PhaseCounts returns the per-phase counts; their element-wise sum
	// equals Counts exactly.
	PhaseCounts() [MaxPhases]Counts
	// SetPhase selects the attribution slot for subsequent charges and
	// returns the previous phase.
	SetPhase(Phase) Phase
	// Reset zeroes the meters and returns the phase selector to 0.
	Reset()
	// AttachFaults installs a fault injector (nil detaches). On the sim
	// every vector result passes through it; on the direct backend the
	// kernels invoke it per lane-transposed limb vector at kernel phase
	// boundaries (after pack, after each Montgomery multiply, before
	// unpack), so Bellcore verification exercises identically on both.
	AttachFaults(Corruptor)
}

// BackendKind selects a Backend implementation.
type BackendKind uint8

const (
	// BackendDefault is the zero value: "let the layer pick". Serving
	// layers (phiserve, the facade batch entry points) resolve it to
	// BackendDirect; measurement layers (phibench, golden tests) construct
	// BackendSim explicitly.
	BackendDefault BackendKind = iota
	// BackendSim is the interpreted, cycle-exact Unit.
	BackendSim
	// BackendDirect is the calibrated direct-arithmetic meter.
	BackendDirect
)

// String implements fmt.Stringer.
func (k BackendKind) String() string {
	switch k {
	case BackendSim:
		return "sim"
	case BackendDirect:
		return "direct"
	default:
		return "default"
	}
}

// ParseBackend maps the flag/env spellings "sim" and "direct" (and "",
// meaning default) to a BackendKind.
func ParseBackend(s string) (BackendKind, bool) {
	switch s {
	case "sim":
		return BackendSim, true
	case "direct":
		return BackendDirect, true
	case "", "default":
		return BackendDefault, true
	default:
		return BackendDefault, false
	}
}

// NewBackend constructs a fresh backend of the given kind.
// BackendDefault resolves to BackendDirect, the serving default.
func NewBackend(kind BackendKind) Backend {
	if kind == BackendSim {
		return New()
	}
	return NewDirect()
}

// Kind implements Backend for the interpreted Unit.
func (u *Unit) Kind() BackendKind { return BackendSim }

var _ Backend = (*Unit)(nil)

// Direct is the direct-arithmetic backend's meter. It executes nothing
// itself: kernels that computed their results with plain limb arithmetic
// charge it with pre-calibrated per-kernel count deltas (Charge/ChargeAt/
// ChargePhases), and it keeps the same global and per-phase books as a
// Unit so everything downstream — knc cycle conversion, telemetry phase
// attribution, traced pass breakdowns — works unchanged.
type Direct struct {
	counts Counts
	phase  Phase
	phases [MaxPhases]Counts
	fault  Corruptor
}

var _ Backend = (*Direct)(nil)

// NewDirect returns a fresh direct-arithmetic meter.
func NewDirect() *Direct { return &Direct{} }

// Kind implements Backend.
func (d *Direct) Kind() BackendKind { return BackendDirect }

// Counts implements Backend.
func (d *Direct) Counts() Counts { return d.counts }

// PhaseCounts implements Backend.
func (d *Direct) PhaseCounts() [MaxPhases]Counts {
	if d == nil {
		return [MaxPhases]Counts{}
	}
	return d.phases
}

// SetPhase implements Backend (same contract as Unit.SetPhase).
func (d *Direct) SetPhase(p Phase) Phase {
	if d == nil {
		return 0
	}
	prev := d.phase
	if p >= MaxPhases {
		p = 0
	}
	d.phase = p
	return prev
}

// Reset implements Backend.
func (d *Direct) Reset() {
	d.counts = Counts{}
	d.phases = [MaxPhases]Counts{}
	d.phase = 0
}

// AttachFaults implements Backend. The direct backend does not route
// results through the injector itself (there are no per-instruction
// results); kernels read it back via Fault and invoke it at their phase
// boundaries.
func (d *Direct) AttachFaults(c Corruptor) {
	if d != nil {
		d.fault = c
	}
}

// Fault returns the attached fault injector (nil when fault-free).
func (d *Direct) Fault() Corruptor {
	if d == nil {
		return nil
	}
	return d.fault
}

// Charge adds a calibrated count delta into the current phase slot — the
// analogue of issuing those instructions under the ambient SetPhase.
func (d *Direct) Charge(c Counts) {
	if d == nil {
		return
	}
	for i, n := range c {
		d.counts[i] += n
		d.phases[d.phase][i] += n
	}
}

// ChargeAt adds a calibrated count delta into a specific phase slot,
// for kernel events that bracket themselves (pack/unpack, window scans)
// regardless of the ambient phase.
func (d *Direct) ChargeAt(p Phase, c Counts) {
	if d == nil {
		return
	}
	if p >= MaxPhases {
		p = 0
	}
	for i, n := range c {
		d.counts[i] += n
		d.phases[p][i] += n
	}
}

// ChargePhases adds a multi-phase calibrated delta (e.g. one Montgomery
// multiply, which splits its work across PhaseMul and PhaseReduce).
func (d *Direct) ChargePhases(pc [MaxPhases]Counts) {
	if d == nil {
		return
	}
	for p := range pc {
		for i, n := range pc[p] {
			d.counts[i] += n
			d.phases[p][i] += n
		}
	}
}
