package vpu

// Memory operations. KNC vector loads/stores move 16 aligned dwords; lane
// extraction/insertion goes through memory (IMCI has no register extract).

// Load models vmovdqa32 from memory: it reads 16 limbs starting at
// src[off], zero-padding past the end of src.
func (u *Unit) Load(src []uint32, off int) Vec {
	u.tick(ClassMem, 1)
	var out Vec
	for i := 0; i < Lanes; i++ {
		if off+i < len(src) {
			out[i] = src[off+i]
		}
	}
	return u.inject(out)
}

// Store models vmovdqa32 to memory: it writes the lanes of v into
// dst[off:off+16], ignoring lanes past the end of dst.
func (u *Unit) Store(dst []uint32, off int, v Vec) {
	u.tick(ClassMem, 1)
	v = u.inject(v) // a flip on the store port corrupts the written data
	for i := 0; i < Lanes; i++ {
		if off+i < len(dst) {
			dst[off+i] = v[i]
		}
	}
}

// Extract reads a single lane into a scalar register. KNC has no direct
// vector-to-scalar move: the lane round-trips through the L1 (vector store,
// scalar load), a ClassCross operation.
func (u *Unit) Extract(v Vec, lane int) uint32 {
	u.tick(ClassCross, 1)
	return v[lane&(Lanes-1)]
}

// Insert writes a single lane from a scalar register (scalar store, masked
// vector load), a ClassCross operation.
func (u *Unit) Insert(v Vec, lane int, x uint32) Vec {
	u.tick(ClassCross, 1)
	v[lane&(Lanes-1)] = x
	return u.inject(v)
}

// LoadAll loads an entire limb slice as ceil(len/16) vectors.
func (u *Unit) LoadAll(src []uint32) []Vec {
	n := (len(src) + Lanes - 1) / Lanes
	out := make([]Vec, n)
	for j := 0; j < n; j++ {
		out[j] = u.Load(src, j*Lanes)
	}
	return out
}

// StoreAll writes vectors back into a limb slice of the given length.
func (u *Unit) StoreAll(vs []Vec, limbs int) []uint32 {
	out := make([]uint32, limbs)
	for j := range vs {
		u.Store(out, j*Lanes, vs[j])
	}
	return out
}
