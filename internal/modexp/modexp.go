// Package modexp implements modular exponentiation strategies over a
// pluggable Montgomery multiplier.
//
// Three strategies are provided, matching the systems compared in the
// paper:
//
//   - Binary: left-to-right square-and-multiply, the naive baseline.
//   - SlidingWindow: the odd-powers sliding window used by OpenSSL's
//     BN_mod_exp_mont.
//   - FixedWindow: the fixed-width window the paper selects for
//     PhiOpenSSL, with an optional constant-time full-table scan
//     (scatter/gather) for the multiplicand lookup.
//
// Each strategy is generic over the Multiplier interface, so the same
// strategy code runs on the scalar baseline kernel (internal/mont) and the
// vectorized PhiOpenSSL kernel (internal/vmont). Experiment E4 compares
// engines; E8 sweeps the fixed-window width.
package modexp

import "phiopenssl/internal/bn"

// Multiplier is a Montgomery multiplication backend for a fixed odd
// modulus. Implementations: *mont.Ctx (scalar, metered in scalar ops) and
// *vmont.Ctx (vectorized, metered in vpu instructions).
type Multiplier interface {
	// K returns the limb width of Montgomery-form values.
	K() int
	// Modulus returns the modulus N.
	Modulus() bn.Nat
	// Mul returns the Montgomery product of two k-limb values < N.
	Mul(a, b []uint32) []uint32
	// Sqr returns the Montgomery square of a k-limb value < N.
	Sqr(a []uint32) []uint32
	// ToMont converts a Nat into Montgomery form.
	ToMont(x bn.Nat) []uint32
	// FromMont converts a Montgomery-form value back to a Nat.
	FromMont(a []uint32) bn.Nat
	// One returns the Montgomery form of 1 (R mod N).
	One() []uint32
}

// TableScanner is implemented by multipliers that support a constant-time
// table lookup whose cost is charged to their meter.
type TableScanner interface {
	ScanTable(table [][]uint32, idx int) []uint32
}

// Binary computes base^exp mod N by left-to-right square-and-multiply.
func Binary(m Multiplier, base, exp bn.Nat) bn.Nat {
	if exp.IsZero() {
		return bn.One().Mod(m.Modulus())
	}
	baseM := m.ToMont(base)
	acc := baseM // top bit is always 1
	for i := exp.BitLen() - 2; i >= 0; i-- {
		acc = m.Sqr(acc)
		if exp.Bit(i) == 1 {
			acc = m.Mul(acc, baseM)
		}
	}
	return m.FromMont(acc)
}

// SlidingWindow computes base^exp mod N with the odd-powers sliding window
// of width w (1 <= w <= 10). This is the strategy of OpenSSL's
// BN_mod_exp_mont: it precomputes base^1, base^3, ..., base^(2^w - 1) and
// consumes maximal odd windows of the exponent.
func SlidingWindow(m Multiplier, base, exp bn.Nat, w int) bn.Nat {
	checkWindow(w)
	if exp.IsZero() {
		return bn.One().Mod(m.Modulus())
	}
	// Precompute odd powers g[i] = base^(2i+1).
	g := make([][]uint32, 1<<(w-1))
	g[0] = m.ToMont(base)
	if len(g) > 1 {
		b2 := m.Sqr(g[0])
		for i := 1; i < len(g); i++ {
			g[i] = m.Mul(g[i-1], b2)
		}
	}

	var acc []uint32
	started := false
	i := exp.BitLen() - 1
	for i >= 0 {
		if exp.Bit(i) == 0 {
			if started {
				acc = m.Sqr(acc)
			}
			i--
			continue
		}
		// Find the largest window [l, i] with an odd low bit.
		l := i - w + 1
		if l < 0 {
			l = 0
		}
		for exp.Bit(l) == 0 {
			l++
		}
		val := exp.Bits(l, i-l+1)
		if started {
			for s := 0; s <= i-l; s++ {
				acc = m.Sqr(acc)
			}
			acc = m.Mul(acc, g[(val-1)/2])
		} else {
			acc = g[(val-1)/2]
			started = true
		}
		i = l - 1
	}
	return m.FromMont(acc)
}

// FixedWindow computes base^exp mod N with fixed windows of width w
// (1 <= w <= 10), the strategy PhiOpenSSL selects: the exponent is consumed
// in aligned w-bit digits with exactly w squarings plus one multiplication
// per digit, giving the regular instruction stream the Phi's in-order
// pipeline wants.
//
// With constTime set, the multiplicand is fetched with a full-table scan
// (TableScanner when available) and the multiplication is performed for
// every digit including zero digits, making the operation sequence
// independent of the exponent — the hardening OpenSSL applies to private
// keys, which the paper keeps.
func FixedWindow(m Multiplier, base, exp bn.Nat, w int, constTime bool) bn.Nat {
	checkWindow(w)
	if exp.IsZero() {
		return bn.One().Mod(m.Modulus())
	}
	table := make([][]uint32, 1<<w)
	table[0] = m.One()
	table[1] = m.ToMont(base)
	for i := 2; i < len(table); i++ {
		table[i] = m.Mul(table[i-1], table[1])
	}

	scanner, canScan := m.(TableScanner)
	lookup := func(idx int) []uint32 {
		if constTime && canScan {
			return scanner.ScanTable(table, idx)
		}
		return table[idx]
	}

	windows := (exp.BitLen() + w - 1) / w
	acc := lookup(int(exp.Bits((windows-1)*w, w)))
	for wi := windows - 2; wi >= 0; wi-- {
		for s := 0; s < w; s++ {
			acc = m.Sqr(acc)
		}
		digit := int(exp.Bits(wi*w, w))
		if constTime {
			acc = m.Mul(acc, lookup(digit))
		} else if digit != 0 {
			acc = m.Mul(acc, table[digit])
		}
	}
	return m.FromMont(acc)
}

// Ladder computes base^exp mod N with the Montgomery powering ladder: one
// multiplication and one squaring per exponent bit with a data-independent
// dependency structure. It is the maximally regular (and slowest)
// constant-time strategy — the E8-adjacent reference point below w=1
// fixed windows.
func Ladder(m Multiplier, base, exp bn.Nat) bn.Nat {
	if exp.IsZero() {
		return bn.One().Mod(m.Modulus())
	}
	r0 := m.One()
	r1 := m.ToMont(base)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		if exp.Bit(i) == 0 {
			r1 = m.Mul(r0, r1)
			r0 = m.Sqr(r0)
		} else {
			r0 = m.Mul(r0, r1)
			r1 = m.Sqr(r1)
		}
	}
	return m.FromMont(r0)
}

// checkWindow validates a window width.
func checkWindow(w int) {
	if w < 1 || w > 10 {
		panic("modexp: window width out of range [1,10]")
	}
}

// OptimalWindow returns the fixed-window width minimizing multiplication
// count for an exponent of the given bit length: the classical
// argmin_w { 2^w + bits/w } schedule (the same table OpenSSL uses).
func OptimalWindow(bits int) int {
	best, bestCost := 1, 1<<63-1
	for w := 1; w <= 7; w++ {
		cost := 1<<w + bits + bits/w
		if cost < bestCost {
			best, bestCost = w, cost
		}
	}
	return best
}
