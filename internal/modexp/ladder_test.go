package modexp

import (
	"math/rand"
	"testing"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/knc"
	"phiopenssl/internal/mont"
)

func TestLadderAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, bits := range []int{64, 512, 1024} {
		m := randOdd(rng, bits)
		base := randBits(rng, bits)
		exp := randBits(rng, bits)
		want := base.ModExp(exp, m)
		for name, mul := range multipliers(t, m) {
			if got := Ladder(mul, base, exp); !got.Equal(want) {
				t.Errorf("%s ladder %d bits: got %s want %s", name, bits, got, want)
			}
		}
	}
}

func TestLadderEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m := randOdd(rng, 256)
	mul := multipliers(t, m)["scalar"]
	if got := Ladder(mul, bn.FromUint64(5), bn.Zero()); !got.IsOne() {
		t.Errorf("x^0 = %s", got)
	}
	if got := Ladder(mul, bn.FromUint64(5), bn.One()); got.CmpUint64(5) != 0 {
		t.Errorf("x^1 = %s", got)
	}
	if got := Ladder(mul, bn.Zero(), bn.FromUint64(9)); !got.IsZero() {
		t.Errorf("0^9 = %s", got)
	}
	// Exponents with long zero runs (the ladder must not shortcut).
	exp := bn.One().Shl(200)
	want := bn.FromUint64(3).ModExp(exp, m)
	if got := Ladder(mul, bn.FromUint64(3), exp); !got.Equal(want) {
		t.Errorf("sparse exponent mismatch")
	}
}

func TestLadderUniformCost(t *testing.T) {
	// The ladder's op count must depend only on the exponent bit length,
	// not on its Hamming weight.
	rng := rand.New(rand.NewSource(102))
	m := randOdd(rng, 512)
	cost := func(exp bn.Nat) uint64 {
		var counts knc.ScalarCounts
		ctx, err := mont.NewCtx(m, &counts)
		if err != nil {
			t.Fatal(err)
		}
		Ladder(ctx, bn.FromUint64(7), exp)
		return counts[knc.OpMulAdd32]
	}
	dense := bn.One().Shl(512).SubUint64(1) // all ones
	sparse := bn.One().Shl(511)             // single bit
	if cd, cs := cost(dense), cost(sparse); cd != cs {
		t.Fatalf("ladder cost depends on Hamming weight: %d vs %d", cd, cs)
	}
}

func TestLadderCostsMoreThanFixedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m := randOdd(rng, 512)
	base := randBits(rng, 512)
	exp := randBits(rng, 512)
	cost := func(f func(Multiplier)) uint64 {
		var counts knc.ScalarCounts
		ctx, err := mont.NewCtx(m, &counts)
		if err != nil {
			t.Fatal(err)
		}
		f(ctx)
		return counts[knc.OpMulAdd32]
	}
	ladder := cost(func(mul Multiplier) { Ladder(mul, base, exp) })
	fixed := cost(func(mul Multiplier) { FixedWindow(mul, base, exp, 5, false) })
	if ladder <= fixed {
		t.Fatalf("ladder (%d) should cost more than w=5 fixed window (%d)", ladder, fixed)
	}
}
