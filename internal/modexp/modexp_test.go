package modexp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/knc"
	"phiopenssl/internal/mont"
	"phiopenssl/internal/vmont"
	"phiopenssl/internal/vpu"
)

func randOdd(rng *rand.Rand, bits int) bn.Nat {
	nbytes := (bits + 7) / 8
	buf := make([]byte, nbytes)
	rng.Read(buf)
	excess := uint(nbytes*8 - bits)
	buf[0] &= 0xff >> excess
	buf[0] |= 0x80 >> excess
	buf[nbytes-1] |= 1
	return bn.FromBytes(buf)
}

func randBits(rng *rand.Rand, bits int) bn.Nat {
	buf := make([]byte, (bits+7)/8)
	rng.Read(buf)
	return bn.FromBytes(buf)
}

// multipliers returns one scalar and one vector backend for m.
func multipliers(t *testing.T, m bn.Nat) map[string]Multiplier {
	t.Helper()
	sc, err := mont.NewCtx(m, &knc.ScalarCounts{})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := vmont.NewCtx(m, vpu.New())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Multiplier{"scalar": sc, "vector": vc}
}

func TestStrategiesAgreeWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{64, 512, 1024} {
		m := randOdd(rng, bits)
		base := randBits(rng, bits)
		exp := randBits(rng, bits)
		want := base.ModExp(exp, m)
		for name, mul := range multipliers(t, m) {
			if got := Binary(mul, base, exp); !got.Equal(want) {
				t.Errorf("%s Binary %d bits: got %s want %s", name, bits, got, want)
			}
			for _, w := range []int{1, 2, 4, 5} {
				if got := SlidingWindow(mul, base, exp, w); !got.Equal(want) {
					t.Errorf("%s Sliding w=%d: got %s want %s", name, w, got, want)
				}
				if got := FixedWindow(mul, base, exp, w, false); !got.Equal(want) {
					t.Errorf("%s Fixed w=%d: got %s want %s", name, w, got, want)
				}
				if got := FixedWindow(mul, base, exp, w, true); !got.Equal(want) {
					t.Errorf("%s FixedCT w=%d: got %s want %s", name, w, got, want)
				}
			}
		}
	}
}

func TestExponentEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randOdd(rng, 256)
	base := randBits(rng, 256)
	for name, mul := range multipliers(t, m) {
		// exp = 0 -> 1.
		for _, f := range []func() bn.Nat{
			func() bn.Nat { return Binary(mul, base, bn.Zero()) },
			func() bn.Nat { return SlidingWindow(mul, base, bn.Zero(), 4) },
			func() bn.Nat { return FixedWindow(mul, base, bn.Zero(), 4, true) },
		} {
			if got := f(); !got.IsOne() {
				t.Errorf("%s: x^0 = %s", name, got)
			}
		}
		// exp = 1 -> base mod m.
		if got := FixedWindow(mul, base, bn.One(), 5, true); !got.Equal(base.Mod(m)) {
			t.Errorf("%s: x^1 = %s", name, got)
		}
		// base = 0 -> 0.
		if got := SlidingWindow(mul, bn.Zero(), bn.FromUint64(5), 3); !got.IsZero() {
			t.Errorf("%s: 0^5 = %s", name, got)
		}
		// base = 1 -> 1.
		if got := Binary(mul, bn.One(), randBits(rng, 100)); !got.IsOne() {
			t.Errorf("%s: 1^e = %s", name, got)
		}
		// Base >= modulus must be reduced.
		big := m.Mul(bn.FromUint64(3)).AddUint64(2)
		want := big.ModExp(bn.FromUint64(10), m)
		if got := FixedWindow(mul, big, bn.FromUint64(10), 3, false); !got.Equal(want) {
			t.Errorf("%s: oversized base: %s want %s", name, got, want)
		}
	}
}

func TestExponentStructuredPatterns(t *testing.T) {
	// Exponents that stress window boundaries: all-ones (every window
	// maximal), single bit (one multiply), alternating bits, and runs of
	// zeros crossing window boundaries.
	rng := rand.New(rand.NewSource(3))
	m := randOdd(rng, 512)
	base := randBits(rng, 512)
	exps := []bn.Nat{
		bn.One().Shl(511),                                   // 2^511
		bn.One().Shl(512).SubUint64(1),                      // all ones
		bn.MustHex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),      // alternating
		bn.MustHex("8000000000000000000000000000000000001"), // sparse
		bn.FromUint64(65537),                                // F4
	}
	for _, e := range exps {
		want := base.ModExp(e, m)
		for name, mul := range multipliers(t, m) {
			for _, w := range []int{1, 3, 5} {
				if got := SlidingWindow(mul, base, e, w); !got.Equal(want) {
					t.Errorf("%s sliding w=%d e=%s", name, w, e)
				}
				if got := FixedWindow(mul, base, e, w, true); !got.Equal(want) {
					t.Errorf("%s fixed w=%d e=%s", name, w, e)
				}
			}
		}
	}
}

func TestWindowValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randOdd(rng, 64)
	mul := multipliers(t, m)["scalar"]
	for _, w := range []int{0, -1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("window %d should panic", w)
				}
			}()
			FixedWindow(mul, bn.One(), bn.One(), w, false)
		}()
	}
}

func TestOptimalWindow(t *testing.T) {
	// Must be monotone non-decreasing in exponent size and land in sane
	// ranges: ~4-5 for 1024-bit, ~5-6 for 2048-4096.
	prev := 0
	for _, bits := range []int{64, 256, 512, 1024, 2048, 4096} {
		w := OptimalWindow(bits)
		if w < prev {
			t.Fatalf("OptimalWindow not monotone at %d bits", bits)
		}
		prev = w
	}
	if w := OptimalWindow(1024); w < 4 || w > 6 {
		t.Errorf("OptimalWindow(1024) = %d", w)
	}
	if w := OptimalWindow(16); w > 3 {
		t.Errorf("OptimalWindow(16) = %d", w)
	}
}

func TestFixedWindowFewerMultsThanBinary(t *testing.T) {
	// The point of windowing: with w=5 a 512-bit exponent costs far fewer
	// multiplications. Verify via the scalar meter.
	rng := rand.New(rand.NewSource(5))
	m := randOdd(rng, 512)
	base := randBits(rng, 512)
	exp := bn.One().Shl(512).SubUint64(1) // worst case for binary

	cost := func(f func(Multiplier)) uint64 {
		var counts knc.ScalarCounts
		ctx, err := mont.NewCtx(m, &counts)
		if err != nil {
			t.Fatal(err)
		}
		f(ctx)
		return counts[knc.OpMulAdd32]
	}
	binaryCost := cost(func(mul Multiplier) { Binary(mul, base, exp) })
	fixedCost := cost(func(mul Multiplier) { FixedWindow(mul, base, exp, 5, false) })
	if fixedCost >= binaryCost {
		t.Fatalf("fixed window (%d muladds) not cheaper than binary (%d)", fixedCost, binaryCost)
	}
	// For the all-ones exponent binary does ~2n mults vs ~n(1+1/w) for
	// fixed: expect at least a 1.3x reduction.
	if ratio := float64(binaryCost) / float64(fixedCost); ratio < 1.3 {
		t.Errorf("window speedup only %.2fx", ratio)
	}
}

func TestConstTimeCostsMore(t *testing.T) {
	// The constant-time table scan must charge more memory traffic than
	// the direct lookup.
	rng := rand.New(rand.NewSource(6))
	m := randOdd(rng, 512)
	base := randBits(rng, 512)
	exp := randBits(rng, 512)
	run := func(ct bool) uint64 {
		var counts knc.ScalarCounts
		ctx, err := mont.NewCtx(m, &counts)
		if err != nil {
			t.Fatal(err)
		}
		FixedWindow(ctx, base, exp, 5, ct)
		return counts[knc.OpMem]
	}
	if ctMem, fastMem := run(true), run(false); ctMem <= fastMem {
		t.Fatalf("const-time mem %d <= fast mem %d", ctMem, fastMem)
	}
}

// Property: all strategies agree with each other on random inputs over a
// fixed modulus (both backends).
func TestQuickStrategyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randOdd(rng, 192)
	muls := multipliers(t, m)
	f := func(baseB, expB []byte, wRaw uint8) bool {
		base := bn.FromBytes(baseB)
		exp := bn.FromBytes(expB)
		w := 1 + int(wRaw)%6
		want := base.ModExp(exp, m)
		for _, mul := range muls {
			if !Binary(mul, base, exp).Equal(want) {
				return false
			}
			if !SlidingWindow(mul, base, exp, w).Equal(want) {
				return false
			}
			if !FixedWindow(mul, base, exp, w, true).Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
