package phiserve

import (
	"context"
	mrand "math/rand"
	"sync"
	"testing"
	"time"

	"phiopenssl/internal/baseline"
	"phiopenssl/internal/bn"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/rsakit"
)

// TestPublicLaneJumpsHeavyFlood is the class-isolation regression test
// (the public-op-lane SLO from the workload refactor): a sustained flood
// of heavy rsa-priv batches saturates the single worker, the dispatch
// queue and the heavy overflow list, and a batch of light public ops
// submitted into the middle of that backlog must still execute promptly
// via the fast lane instead of queueing behind it.
//
// The assertion is ordering-based, not wall-clock-based: when the last
// light result lands, at most half of the heavy flood may have completed.
// Without the per-class intake split and the pool's fast lane, the light
// batch sits behind every parked heavy batch and completes only after
// essentially the whole flood — which this test reliably catches.
func TestPublicLaneJumpsHeavyFlood(t *testing.T) {
	// Heavy: 1024-bit CRT private ops — slow enough that the worker is
	// still deep in the flood when the light batch lands. Light: 512-bit
	// public ops, the e=65537 cheap class.
	heavyKey := mustKey(1024, 31)
	heavy := phiwork.RSAPrivateFor(heavyKey)
	light := phiwork.RSAPublicFor(&testKey.PublicKey)

	const heavyBatches = 12
	const heavyN = heavyBatches * BatchSize

	s, err := New(Config{
		Workers:      1,
		QueueDepth:   2,
		FillDeadline: 50 * time.Millisecond, // full batches seal immediately; this is a backstop
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	defer s.Close()

	// The heavy flood, from a goroutine: once the heavy overflow list hits
	// QueueDepth the scheduler stops pulling the heavy intake, so these
	// submits block on backpressure — which must never gate the light lane.
	heavyResps := make([]<-chan Result, heavyN)
	var floodDone sync.WaitGroup
	floodDone.Add(1)
	go func() {
		defer floodDone.Done()
		rng := mrand.New(mrand.NewSource(41))
		for i := range heavyResps {
			c, err := bn.RandomRange(rng, bn.One(), heavyKey.N)
			if err != nil {
				t.Error(err)
				return
			}
			ch, err := s.SubmitWork(context.Background(), heavy, phiwork.Input{A: c}, SubmitOpts{})
			if err != nil {
				t.Errorf("heavy submit %d: %v", i, err)
				return
			}
			heavyResps[i] = ch
		}
	}()

	// Wait until the backlog is real: at least one heavy batch parked on
	// the overflow list beyond the full dispatch queue.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().OverflowBatches < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("heavy flood never overflowed the queue; stats: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// A full batch of light public ops into the saturated server. Submits
	// must be accepted immediately (the heavy backpressure gate holds only
	// the heavy intake) and the batch must jump the heavy backlog.
	ref := baseline.NewOpenSSL()
	rng := mrand.New(mrand.NewSource(43))
	lightResps := make([]<-chan Result, BatchSize)
	lightWant := make([]bn.Nat, BatchSize)
	for i := range lightResps {
		m, err := bn.RandomRange(rng, bn.One(), testKey.N)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rsakit.PublicOp(ref, &testKey.PublicKey, m)
		if err != nil {
			t.Fatal(err)
		}
		lightWant[i] = want
		ch, err := s.SubmitWork(context.Background(), light, phiwork.Input{A: m}, SubmitOpts{})
		if err != nil {
			t.Fatalf("light submit %d rejected under heavy flood: %v", i, err)
		}
		lightResps[i] = ch
	}
	for i, ch := range lightResps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(lightWant[i]) {
			t.Fatalf("light request %d: %+v", i, res)
		}
	}

	// The starvation assertion: the flood is still mostly pending when the
	// light batch finishes. The worker completes at most the in-flight
	// heavy batch plus a couple more in the submit window; completing more
	// than half the flood means the light batch waited in the heavy line.
	heavyDone := s.Stats().Workloads[phiwork.KindRSAPrivate].Completed
	if heavyDone > heavyN/2 {
		t.Fatalf("light batch finished only after %d/%d heavy ops; public lane starved behind the flood", heavyDone, heavyN)
	}

	// Drain: the flood itself must still resolve completely and correctly
	// sized (exactly-once accounting, nothing shed).
	floodDone.Wait()
	if t.Failed() {
		return
	}
	for i, ch := range heavyResps {
		if res := <-ch; res.Err != nil {
			t.Fatalf("heavy request %d: %v", i, res.Err)
		}
	}
	st := s.Stats()
	if st.Completed != heavyN+BatchSize || st.Failed != 0 {
		t.Fatalf("drain accounting wrong: %+v", st)
	}
	if got := st.Workloads[phiwork.KindPublic].Completed; got != BatchSize {
		t.Fatalf("public-lane accounting: completed %d, want %d", got, BatchSize)
	}
}
