package phiserve

import (
	"context"
	"errors"
	mrand "math/rand"
	"testing"
	"time"

	"phiopenssl/internal/baseline"
	"phiopenssl/internal/bn"
	"phiopenssl/internal/core"
	"phiopenssl/internal/engine"
	"phiopenssl/internal/knc"
	"phiopenssl/internal/rsakit"
)

// testKey is a deterministic 512-bit key (small sizes keep the host-time
// cost of the thousand-request test low; correctness is size-independent).
var testKey = mustKey(512, 7)

func mustKey(bits int, seed int64) *rsakit.PrivateKey {
	k, err := rsakit.GenerateKey(mrand.New(mrand.NewSource(seed)), bits)
	if err != nil {
		panic(err)
	}
	return k
}

// perOpAnswers precomputes PrivateOp reference answers for nc distinct
// ciphertexts and returns (ciphertexts, answers, per-op Phi engine
// cycles). Every scheduler result is compared against these per-op
// answers.
func perOpAnswers(t *testing.T, key *rsakit.PrivateKey, nc int, seed int64) ([]bn.Nat, []bn.Nat, float64) {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	ref := baseline.NewOpenSSL()
	cs := make([]bn.Nat, nc)
	want := make([]bn.Nat, nc)
	for i := range cs {
		c, err := bn.RandomRange(rng, bn.One(), key.N)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
		m, err := rsakit.PrivateOp(ref, key, c, rsakit.DefaultPrivateOpts())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	var phi engine.Engine = core.New()
	if _, err := rsakit.PrivateOp(phi, key, cs[0], rsakit.DefaultPrivateOpts()); err != nil {
		t.Fatal(err)
	}
	return cs, want, phi.Cycles()
}

// TestThousandRequestsMatchPerOpAndBeatIt is the acceptance driver: ≥1000
// single requests stream through a 16-lane scheduler; every result must
// match the per-op rsakit.PrivateOp answer, and the amortized simulated
// cycles/op of the (mostly full) batches must undercut the per-op
// PhiOpenSSL engine, consistent with ablation A4.
func TestThousandRequestsMatchPerOpAndBeatIt(t *testing.T) {
	const n = 1008 // 63 full batches
	nc := 64
	cs, want, perOpCycles := perOpAnswers(t, testKey, nc, 100)

	s, err := New(Config{
		Workers:      4,
		QueueDepth:   8,
		FillDeadline: 200 * time.Millisecond, // far beyond the submit loop's pace
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	resps := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if !res.M.Equal(want[i%nc]) {
			t.Fatalf("request %d: scheduler answer differs from per-op PrivateOp", i)
		}
		if res.BatchFill < 1 || res.BatchFill > BatchSize || res.BatchCycles <= 0 || res.SimLatency <= 0 {
			t.Fatalf("request %d: implausible result metadata %+v", i, res)
		}
	}
	s.Close()

	st := s.Stats()
	if st.Submitted != n || st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats %+v after %d clean requests", st, n)
	}
	if st.FillHist[BatchSize-1] < 60 {
		t.Fatalf("only %d of %d batches filled all lanes (hist %v)", st.FillHist[BatchSize-1], st.Batches, st.FillHist)
	}
	if st.CyclesPerOp <= 0 || st.CyclesPerOp >= perOpCycles {
		t.Fatalf("batched cycles/op %.0f not below per-op engine %.0f", st.CyclesPerOp, perOpCycles)
	}
	if st.SimThroughput <= 0 || st.MeanSimLatency <= 0 || st.MeanFill < 15 {
		t.Fatalf("implausible aggregate stats %+v", st)
	}
}

// TestFillDeadlineDispatchesPartialBatch: with fewer requests than lanes,
// the deadline must fire and serve a padded partial batch whose results
// still match the per-op answers.
func TestFillDeadlineDispatchesPartialBatch(t *testing.T) {
	cs, want, _ := perOpAnswers(t, testKey, 3, 101)
	s, err := New(Config{Workers: 2, FillDeadline: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	var resps []<-chan Result
	for _, c := range cs {
		ch, err := s.Submit(context.Background(), testKey, c)
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, ch)
	}
	for i, ch := range resps {
		select {
		case res := <-ch:
			if res.Err != nil || !res.M.Equal(want[i]) {
				t.Fatalf("request %d: %+v", i, res)
			}
			if res.BatchFill != 3 {
				t.Fatalf("request %d served by fill-%d batch, want 3", i, res.BatchFill)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d: deadline never dispatched", i)
		}
	}
	s.Close()
	st := s.Stats()
	if st.DeadlineFires < 1 || st.FillHist[2] != 1 {
		t.Fatalf("deadline accounting wrong: %+v", st)
	}
}

// TestCancelMidStreamDrainsInFlightFailsQueued is acceptance criterion
// (c): cancellation mid-stream completes in-flight batches and fails
// queued requests with the distinct ErrCanceled; every accepted request
// resolves exactly once.
func TestCancelMidStreamDrainsInFlightFailsQueued(t *testing.T) {
	const n = 320
	nc := 16
	cs, want, _ := perOpAnswers(t, testKey, nc, 102)

	s, err := New(Config{
		Workers:      1, // slow consumer: the queue backs up
		QueueDepth:   4,
		FillDeadline: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	type outcome struct {
		idx int
		res Result
	}
	results := make(chan outcome, n)
	accepted := 0
	canceledAtSubmit := 0
	for i := 0; i < n; i++ {
		ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
		if err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("submit %d: %v", i, err)
			}
			canceledAtSubmit++
			continue
		}
		accepted++
		go func(i int, ch <-chan Result) { results <- outcome{i, <-ch} }(i, ch)
		if i == n/2 {
			cancel() // mid-stream
		}
	}
	if _, err := s.Submit(context.Background(), testKey, cs[0]); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Submit after cancel: %v", err)
	}
	s.Close()

	completed, failed := 0, 0
	for k := 0; k < accepted; k++ {
		select {
		case o := <-results:
			if o.res.Err != nil {
				if !errors.Is(o.res.Err, ErrCanceled) {
					t.Fatalf("request %d failed with %v, want ErrCanceled", o.idx, o.res.Err)
				}
				failed++
				continue
			}
			if !o.res.M.Equal(want[o.idx%nc]) {
				t.Fatalf("request %d: drained batch produced a wrong answer", o.idx)
			}
			completed++
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d of %d accepted requests resolved", k, accepted)
		}
	}
	if completed == 0 {
		t.Fatal("cancellation completed nothing; expected in-flight batches to drain")
	}
	if failed == 0 && canceledAtSubmit == 0 {
		t.Fatal("cancellation failed nothing; expected queued requests to be rejected")
	}
	st := s.Stats()
	if st.Completed != int64(completed) || st.Failed != int64(failed) {
		t.Fatalf("stats %+v disagree with observed %d completed / %d failed", st, completed, failed)
	}
}

// TestGracefulCloseFlushesOpenBatch: Close must dispatch an open partial
// batch immediately instead of waiting out a long fill deadline.
func TestGracefulCloseFlushesOpenBatch(t *testing.T) {
	cs, want, _ := perOpAnswers(t, testKey, 5, 103)
	s, err := New(Config{Workers: 2, FillDeadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	var resps []<-chan Result
	for _, c := range cs {
		ch, err := s.Submit(context.Background(), testKey, c)
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, ch)
	}
	start := time.Now()
	s.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; it must not wait for the fill deadline", elapsed)
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(want[i]) || res.BatchFill != 5 {
			t.Fatalf("request %d after graceful close: %+v", i, res)
		}
	}
	if _, err := s.Submit(context.Background(), testKey, cs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	s.Close() // idempotent
}

// TestTwoKeysNeverShareABatch: batches aggregate per key; interleaved
// traffic under two keys must produce per-key batches only.
func TestTwoKeysNeverShareABatch(t *testing.T) {
	keyB := mustKey(512, 8)
	csA, wantA, _ := perOpAnswers(t, testKey, 8, 104)
	rngB := mrand.New(mrand.NewSource(105))
	refB := baseline.NewOpenSSL()
	csB := make([]bn.Nat, 8)
	wantB := make([]bn.Nat, 8)
	for i := range csB {
		c, err := bn.RandomRange(rngB, bn.One(), keyB.N)
		if err != nil {
			t.Fatal(err)
		}
		csB[i] = c
		m, err := rsakit.PrivateOp(refB, keyB, c, rsakit.DefaultPrivateOpts())
		if err != nil {
			t.Fatal(err)
		}
		wantB[i] = m
	}

	s, err := New(Config{Workers: 2, FillDeadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	var respsA, respsB []<-chan Result
	for i := 0; i < 8; i++ {
		chA, err := s.Submit(context.Background(), testKey, csA[i])
		if err != nil {
			t.Fatal(err)
		}
		chB, err := s.Submit(context.Background(), keyB, csB[i])
		if err != nil {
			t.Fatal(err)
		}
		respsA = append(respsA, chA)
		respsB = append(respsB, chB)
	}
	for i := range respsA {
		if res := <-respsA[i]; res.Err != nil || !res.M.Equal(wantA[i]) {
			t.Fatalf("key A request %d: %+v", i, res)
		}
		if res := <-respsB[i]; res.Err != nil || !res.M.Equal(wantB[i]) {
			t.Fatalf("key B request %d: %+v", i, res)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Batches < 2 {
		t.Fatalf("two keys x 8 requests produced %d batches; keys must not share lanes", st.Batches)
	}
	if st.FillHist[BatchSize-1] != 0 {
		t.Fatalf("a full 16-lane batch appeared across two 8-request keys: %v", st.FillHist)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), testKey, bn.One()); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Submit before Start: %v", err)
	}
	if _, err := s.Submit(context.Background(), nil, bn.One()); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := s.Submit(context.Background(), testKey, testKey.N); err == nil {
		t.Fatal("out-of-range ciphertext accepted")
	}
	s.Start(context.Background())
	res, err := s.Do(context.Background(), testKey, bn.One())
	if err != nil || res.Err != nil || !res.M.Equal(bn.One()) {
		t.Fatalf("Do(1^d mod n): %+v, %v", res, err)
	}
	s.Close()
}

func TestConfigDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Machine.MaxThreads() != knc.Default().MaxThreads() || cfg.Workers < 1 ||
		cfg.FillDeadline <= 0 || cfg.QueueDepth < cfg.Workers {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := New(Config{Machine: knc.Machine{Name: "dead", Cores: 3}}); err == nil {
		t.Fatal("zero-thread machine accepted")
	}
}
