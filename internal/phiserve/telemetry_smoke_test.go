package phiserve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"phiopenssl/internal/telemetry"
)

// TestTelemetrySmoke is the end-to-end observability check: a thousand
// requests stream through a traced server, and afterwards (a) the trace
// buffer exports as valid Chrome trace-event JSON with exactly one
// begin/end request span pair per submitted request, and (b) the
// Prometheus endpoint scrape shows per-phase cycle attribution summing to
// the total simulated cycle counter within 0.1%.
func TestTelemetrySmoke(t *testing.T) {
	const n = 1008 // 63 full 16-lane batches
	nc := 24
	cs, want, _ := perOpAnswers(t, testKey, nc, 700)

	tel := telemetry.NewWithTrace(0)
	s, err := New(Config{
		Workers:      4,
		FillDeadline: 50 * time.Millisecond,
		Telemetry:    tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	resps := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if !res.M.Equal(want[i%nc]) {
			t.Fatalf("request %d: wrong plaintext", i)
		}
	}
	s.Close()

	// --- Trace: valid Chrome trace JSON, one resolve span per request.
	var buf bytes.Buffer
	if err := tel.Tracer.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int64   `json:"pid"`
			Tid  int64   `json:"tid"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v", err)
	}
	if dropped := tel.Tracer.Dropped(); dropped != 0 {
		t.Fatalf("trace buffer dropped %d events; capacity too small for the smoke run", dropped)
	}
	begins := map[string]int{}
	ends := map[string]int{}
	var passes, threads int
	for _, ev := range trace.TraceEvents {
		switch {
		case ev.Ph == "b" && ev.Cat == "request":
			begins[ev.ID]++
		case ev.Ph == "e" && ev.Cat == "request":
			ends[ev.ID]++
		case ev.Ph == "X" && ev.Name == "pass":
			passes++
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads++
		}
	}
	if len(ends) != n {
		t.Fatalf("trace has %d distinct resolve spans, want %d", len(ends), n)
	}
	for id, c := range ends {
		if c != 1 {
			t.Fatalf("request %s resolved %d times in the trace", id, c)
		}
		if begins[id] != 1 {
			t.Fatalf("request %s has %d begin spans", id, begins[id])
		}
	}
	st := s.Stats()
	if int64(passes) != st.Batches {
		t.Fatalf("trace has %d pass slices, stats report %d batches", passes, st.Batches)
	}
	if threads < 2 { // scheduler track + at least one worker track
		t.Fatalf("trace names only %d threads", threads)
	}

	// --- Metrics: scrape the live endpoint and cross-check attribution.
	rec := httptest.NewRecorder()
	telemetry.Handler(tel).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	body := rec.Body.String()
	var phaseSum, total, completed float64
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "phiserve_phase_sim_cycles_total{"):
			phaseSum += metricValue(t, line)
		case strings.HasPrefix(line, "phiserve_sim_cycles_total "):
			total = metricValue(t, line)
		case strings.HasPrefix(line, "phiserve_requests_completed_total "):
			completed = metricValue(t, line)
		}
	}
	if completed != n {
		t.Fatalf("scraped %v completed requests, want %d", completed, n)
	}
	if total <= 0 {
		t.Fatalf("no simulated cycles scraped:\n%s", body)
	}
	if rel := math.Abs(phaseSum-total) / total; rel > 0.001 {
		t.Fatalf("phase cycle attribution %v vs total %v: relative error %v > 0.1%%",
			phaseSum, total, rel)
	}
}

// metricValue parses the sample value off one Prometheus text line.
func metricValue(t *testing.T, line string) float64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("bad metric line %q: %v", line, err)
	}
	return v
}
