package phiserve

import (
	"context"
	"testing"
	"time"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/faultsim"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/rsakit"
)

// TestDeadlineFiresWhileDispatchQueueSaturated is the head-of-line
// regression test: one key saturates the dispatch queue (a stalled worker
// holds one batch, two more fill the queue, a fourth overflows), and a
// partial batch of a *different* key must still dispatch on its fill
// deadline. Before the overflow-list fix the scheduler goroutine blocked
// inside pool.Submit on the fourth batch, so the key-B deadline flush sat
// unprocessed forever and this test times out.
func TestDeadlineFiresWhileDispatchQueueSaturated(t *testing.T) {
	keyB := mustKey(512, 8)
	stalls := make([]faultsim.PassOutcome, 16)
	for i := range stalls {
		stalls[i] = faultsim.PassStall
	}
	s, err := New(Config{
		Workers:      1,
		QueueDepth:   2,
		FillDeadline: 25 * time.Millisecond,
		Resilience: Resilience{
			// ExecTimeout stays 0: the stalled worker parks until Close,
			// keeping its batch pinned so the queue stays saturated.
			BreakerThreshold: 2, // never trip; degraded mode would bypass batching
			Faults:           &faultsim.Config{Seed: 1, Script: stalls},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	submitN := func(key *rsakit.PrivateKey, n int) []<-chan Result {
		t.Helper()
		out := make([]<-chan Result, n)
		for i := range out {
			ch, err := s.Submit(context.Background(), key, bn.One())
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			out[i] = ch
		}
		return out
	}
	waitFor := func(what string, cond func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(s.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats: %+v", what, s.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Batch 1 reaches the worker, which stalls and parks holding it.
	respsA := submitN(testKey, BatchSize)
	waitFor("worker stall", func(st Stats) bool { return st.StalledPasses >= 1 })
	// Batches 2 and 3 fill the queue; batch 4 finds it full. The old code
	// blocks the scheduler right here.
	respsA = append(respsA, submitN(testKey, 3*BatchSize)...)
	waitFor("dispatch overflow", func(st Stats) bool { return st.OverflowBatches >= 1 })

	// A lone key-B request opens a partial batch; its deadline must fire
	// even though key A has the card wedged solid.
	respB := submitN(keyB, 1)[0]
	waitFor("key-B deadline fire", func(st Stats) bool { return st.DeadlineFires >= 1 })

	// Close releases the parked worker; everything drains via the scalar
	// path and every request still resolves exactly once.
	s.Close()
	for i, ch := range respsA {
		if res := <-ch; res.Err != nil {
			t.Fatalf("key-A request %d: %v", i, res.Err)
		}
	}
	if res := <-respB; res.Err != nil || !res.M.Equal(bn.One()) {
		t.Fatalf("key-B request: %+v", res)
	}
	st := s.Stats()
	if st.Completed != int64(len(respsA)+1) || st.Failed != 0 {
		t.Fatalf("drain accounting wrong: %+v", st)
	}
}

// TestWorkTagCacheBounded: the per-workload trace-tag cache must not grow
// without bound on a long-lived server seeing many distinct workloads.
func TestWorkTagCacheBounded(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workTagCacheMax+64; i++ {
		k := *testKey // distinct pointer per iteration; workTag is identity-keyed
		if tag := s.workTag(phiwork.NewRSAPrivate(&k)); tag == "" {
			t.Fatal("empty work tag")
		}
	}
	size := 0
	s.workTags.Range(func(_, _ any) bool {
		size++
		return true
	})
	if size > workTagCacheMax {
		t.Fatalf("workTags holds %d entries, cap is %d", size, workTagCacheMax)
	}
}
