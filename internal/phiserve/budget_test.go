package phiserve

import "testing"

// TestRetryBudgetAccounting: the bucket starts full, withdrawals are
// all-or-nothing, deposits credit the configured ratio, refunds restore
// whole tokens, and everything caps at the burst.
func TestRetryBudgetAccounting(t *testing.T) {
	b := NewRetryBudget(0.5, 4)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("cold budget holds %v tokens, want 4 (starts full)", got)
	}
	if !b.Allow(4) {
		t.Fatal("full withdrawal denied")
	}
	if b.Allow(1) {
		t.Fatal("empty bucket allowed a withdrawal")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("Denied = %d, want 1", got)
	}
	// A denied withdrawal must take nothing; two successes earn one token.
	b.Deposit(2)
	if got := b.Tokens(); got != 1 {
		t.Fatalf("after deposit: %v tokens, want 1", got)
	}
	if !b.Allow(1) {
		t.Fatal("earned token denied")
	}
	// Refund restores whole tokens (work that never ran), capped at burst.
	b.Refund(10)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("refund past burst: %v tokens, want cap 4", got)
	}
	// Deposits cap at burst too.
	b.Deposit(100)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("deposit past burst: %v tokens, want cap 4", got)
	}
}

// TestRetryBudgetNilGrantsEverything: the zero-value Resilience policy
// (no budget) must behave exactly as before the budget existed.
func TestRetryBudgetNilGrantsEverything(t *testing.T) {
	var b *RetryBudget
	if !b.Allow(1 << 20) {
		t.Fatal("nil budget denied a withdrawal")
	}
	b.Deposit(10)
	b.Refund(10)
	if b.Denied() != 0 || b.Tokens() != 0 {
		t.Fatal("nil budget accounting non-zero")
	}
}
