package phiserve

import (
	"fmt"
	mrand "math/rand"
	"time"

	"phiopenssl/internal/baseline"
	"phiopenssl/internal/engine"
	"phiopenssl/internal/faultsim"
	"phiopenssl/internal/knc"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/telemetry"
	"phiopenssl/internal/vbatch"
	"phiopenssl/internal/vpu"
)

// Resilience is the server's survival policy for a faulty coprocessor.
// Execution is always verified (the Bellcore re-encryption check runs on
// every pass); Resilience decides what happens when verification fails,
// when a worker stalls, and when faults become frequent enough that the
// vector path should be abandoned wholesale.
//
// All randomness — fault schedules and retry jitter — is seeded, so a
// given configuration replays bit-identically.
type Resilience struct {
	// MaxRetries is how many fresh-batch vector retries a fault-detected
	// lane gets before degrading to the scalar fallback. 0 means the
	// default (2); -1 disables retries (first fault degrades).
	MaxRetries int
	// RetryBackoff is the base host-time delay before the first retry
	// pass; it doubles per attempt, with seeded jitter drawn from
	// [base/2, base] of the doubled value. 0 retries immediately.
	RetryBackoff time.Duration
	// ExecTimeout bounds one batch execution on a worker. A batch still
	// running after it is declared stalled: the worker respawns with a
	// fresh vector unit (and fresh fault schedule), and the batch is
	// re-dispatched or served by the fallback. It must comfortably exceed
	// the host time of one kernel pass at the configured key size. 0
	// disables stall detection — an injected stall then parks its worker
	// until Close.
	ExecTimeout time.Duration
	// BreakerWindow is the rolling window of pass outcomes the circuit
	// breaker watches. Default 32.
	BreakerWindow int
	// BreakerThreshold is the faulty-pass fraction that trips the breaker
	// once BreakerMinSamples outcomes are in the window. Default 0.5; set
	// above 1 to disable tripping.
	BreakerThreshold float64
	// BreakerMinSamples gates tripping until the window has evidence.
	// Default 8.
	BreakerMinSamples int
	// BreakerCooldown is how long the breaker stays open before
	// half-opening with a probe batch. Default 100ms (host time).
	BreakerCooldown time.Duration
	// Budget, when non-nil, is the shared retry budget: vector retry
	// passes and stall-timeout re-dispatches withdraw one token per lane
	// and are refused (degrading straight to the scalar fallback) when
	// the bucket is empty; successful completions refill it. The fleet
	// hands one budget to every card so fault recovery is capped
	// globally and cannot amplify an overload. Nil grants everything.
	Budget *RetryBudget
	// Seed drives retry jitter (per-worker streams derived from it). The
	// fault schedule has its own seed inside Faults.
	Seed int64
	// Faults, when non-nil and enabled, attaches a deterministic fault
	// injector to every worker's vector unit, with per-worker schedules
	// derived from Faults.Seed. Respawned workers draw fresh schedules.
	Faults *faultsim.Config
}

func (r Resilience) withDefaults() Resilience {
	if r.MaxRetries == 0 {
		r.MaxRetries = 2
	}
	if r.MaxRetries < 0 {
		r.MaxRetries = 0 // -1 sentinel: no retries
	}
	if r.BreakerWindow < 1 {
		r.BreakerWindow = 32
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 0.5
	}
	if r.BreakerMinSamples < 1 {
		r.BreakerMinSamples = 8
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 100 * time.Millisecond
	}
	return r
}

// jitterSeedOffset separates the retry-jitter seed stream from the fault
// stream when both derive from the same top-level seed.
const jitterSeedOffset = 0x6a69747465 // "jitte"

// worker is one simulated hardware thread's private state: its kernel
// backend (interpreted unit or direct-arithmetic meter, per
// Config.Backend), its (optional) fault injector, a lazily built scalar
// engine for the fallback path, and a seeded jitter source. Respawned
// workers get a fresh index, hence fresh deterministic streams (and a
// fresh trace track, so a respawn is visible as a new named row in
// Perfetto).
type worker struct {
	id      int
	track   int64 // trace track: Config.TrackBase + 1 + id
	backend vpu.Backend
	inj     *faultsim.Injector
	scalar  engine.Engine
	rng     *mrand.Rand
	// meter accumulates this worker's lifetime cycle attribution across
	// passes; its running total rides along in the pass trace events.
	meter *knc.Meter
}

// tid is the worker's trace track (the server's TrackBase row is the
// scheduler/control).
func (w *worker) tid() int64 { return w.track }

func (w *worker) scalarEngine() engine.Engine {
	if w.scalar == nil {
		// The card's stock scalar library: non-CRT ops on it never touch
		// the vector unit, so injected VPU faults cannot reach them.
		w.scalar = baseline.NewMPSS()
	}
	return w.scalar
}

// newWorker is the pool's state factory.
func (s *Server) newWorker() *worker {
	idx := int(s.workerSeq.Add(1)) - 1
	r := s.cfg.Resilience
	w := &worker{
		id:      idx,
		track:   s.cfg.TrackBase + 1 + int64(idx),
		backend: vpu.NewBackend(s.cfg.Backend),
		rng: mrand.New(mrand.NewSource(
			faultsim.Config{Seed: r.Seed + jitterSeedOffset}.ForWorker(idx).Seed)),
		meter: knc.NewVectorMeter(knc.KNCVectorCosts),
	}
	if r.Faults != nil && r.Faults.Enabled() {
		w.inj = faultsim.New(r.Faults.ForWorker(idx))
		w.backend.AttachFaults(w.inj)
	}
	s.tracer.NameThread(w.tid(), s.trackName(fmt.Sprintf("worker %d", idx)))
	return w
}

// liveReqs filters out requests that were already resolved (a stalled
// batch's requests may have been answered by a re-dispatch racing the
// zombie execution). Unlike Server.dropDeadLanes it resolves nothing —
// the stall-drain path uses it where the remaining lanes must still be
// served rather than judged.
func liveReqs(reqs []*request) []*request {
	out := make([]*request, 0, len(reqs))
	for _, q := range reqs {
		if !q.done.Load() {
			out = append(out, q)
		}
	}
	return out
}

// runBatch executes one batch on a worker. This is where the whole
// resilience policy lives:
//
//	fallback batch, or breaker open  -> scalar path
//	injected stall                   -> park until release/timeout respawn
//	kernel failure / faulted lanes   -> breaker feedback, bounded retries
//	                                    with backoff, then scalar fallback
//
// Clean lanes resolve as soon as their pass verifies; only faulted lanes
// ride into the retry passes.
func (s *Server) runBatch(w *worker, b *batch) {
	if !b.enqueuedAt.IsZero() {
		s.stats.queueWait.Observe(time.Since(b.enqueuedAt).Seconds())
	}
	if b.fallback {
		s.runScalarOn(w.scalarEngine(), b.reqs, b.attempts, w.tid())
		return
	}
	allow, probe := s.breaker.allowVector()
	if !allow {
		s.runScalarOn(w.scalarEngine(), b.reqs, b.attempts, w.tid())
		return
	}
	// Pre-pass filter: the last checkpoint before lanes pack into a
	// kernel pass. Expired and canceled lanes resolve here, so no dead
	// lane ever burns card cycles.
	pending := s.dropDeadLanes(b.reqs, "pre-pass")
	if len(pending) == 0 {
		return
	}
	attempt := b.attempts
	for {
		outcome := faultsim.PassOK
		if w.inj != nil {
			outcome = w.inj.NextPass()
		}
		if outcome == faultsim.PassStall {
			// The hardware thread wedged mid-pass. The pool's ExecTimeout
			// monitor (if configured) has respawned the worker and
			// re-dispatched the batch; this goroutine is the zombie. Park
			// until shutdown, then serve whatever is still unresolved.
			s.stats.stalledPasses.Inc()
			s.tracer.Instant(w.tid(), "stall",
				telemetry.Args{"lanes": len(pending), "attempt": attempt})
			s.breaker.record(true, probe)
			if s.awaitStallRelease() {
				// Graceful drain: the vector unit is gone but the scalar
				// path still works; no request is left behind.
				s.runScalarOn(w.scalarEngine(), pending, attempt+1, w.tid())
			} else {
				for _, q := range pending {
					s.finish(q, Result{Err: ErrCanceled})
				}
			}
			return
		}

		var faulted []*request
		if outcome == faultsim.PassKernelFail {
			// Transient whole-kernel failure: the pass aborted, no lane
			// produced a result.
			s.stats.kernelFaults.Inc()
			s.tracer.Instant(w.tid(), "kernel-fault",
				telemetry.Args{"lanes": len(pending), "attempt": attempt})
			s.breaker.record(true, probe)
			faulted = pending
		} else {
			w.backend.Reset()
			ins := make([]phiwork.Input, len(pending))
			for i, q := range pending {
				ins[i] = q.in
			}
			passStart := time.Now()
			out, laneErrs, bd, err := b.work.ExecuteBatch(w.backend, ins)
			if err != nil {
				for _, q := range pending {
					s.finish(q, Result{Err: err})
				}
				s.breaker.record(true, probe)
				return
			}
			fill := len(pending)
			cycles := knc.KNCVectorCosts.VectorCycles(bd.Counts)
			phases := knc.KNCVectorCosts.PhaseBreakdown(bd.Phases)
			w.meter.ChargeVectorPhases(bd.Phases)
			simLat := s.cfg.Machine.Latency(s.cfg.Workers, cycles)
			served := 0
			transient := 0
			for i, q := range pending {
				if laneErrs[i] != nil {
					if phiwork.Transient(laneErrs[i]) {
						// A detected computational fault: the lane is a retry
						// candidate on a fresh pass.
						faulted = append(faulted, q)
						transient++
						continue
					}
					// A permanent per-lane error (e.g. a degenerate DHE
					// shared secret): retrying cannot fix the input, and the
					// hardware did nothing wrong, so it resolves now without
					// feeding the breaker or the retry machinery.
					s.finish(q, Result{Err: laneErrs[i], BatchFill: fill, Attempts: attempt})
					continue
				}
				if s.finish(q, Result{
					M:           out[i],
					BatchFill:   fill,
					BatchCycles: cycles,
					SimLatency:  simLat,
					Attempts:    attempt,
				}) {
					served++
				}
			}
			passWall := time.Since(passStart)
			if note := journeyNote(pending, func() string {
				n := fmt.Sprintf("worker=%d fill=%d cycles=%.0f", w.id, fill, cycles)
				for _, seg := range bd.Segments {
					n += " " + seg.Name + "=" + seg.Wall.Round(time.Microsecond).String()
				}
				return n
			}); note != "" {
				for _, q := range pending {
					q.journey.EventDur("pass", s.cfg.Card, note, passWall)
				}
			}
			if b.work.Class() == phiwork.ClassHeavy {
				s.observePass(passWall)
			}
			s.stats.recordBatch(b.work.Kind(), fill, served, cycles, simLat, phases)
			s.stats.faultsDetected.Add(int64(transient))
			s.tracePass(w, b, passStart, bd, fill, attempt, cycles, phases, transient)
			s.breaker.record(transient > 0, probe)
		}
		probe = false // only this batch's first pass can be the probe
		if len(faulted) == 0 {
			return
		}
		// Faulted lanes are retry candidates for a sibling card first:
		// its hardware is an independent fault domain, so a retry there
		// dodges whatever is wrong here.
		faulted = faulted[s.offerSteal(b.work, faulted, StealFaultRetry):]
		// A lane that expired or was abandoned during the failed pass must
		// not ride a retry either.
		faulted = s.dropDeadLanes(faulted, "retry")
		if len(faulted) == 0 {
			return
		}
		attempt++
		if attempt > s.cfg.Resilience.MaxRetries || !s.breaker.healthy() {
			s.runScalarOn(w.scalarEngine(), faulted, attempt, w.tid())
			return
		}
		if !s.cfg.Resilience.Budget.Allow(len(faulted)) {
			// The shared retry budget is dry: recovery work would amplify
			// the overload, so degrade straight to the scalar fallback.
			s.stats.budgetDenied.Add(int64(len(faulted)))
			s.cfg.Journeys.Trigger("retry-budget-exhausted", map[string]any{
				"card": s.cfg.Card, "lanes": len(faulted), "attempt": attempt,
			})
			s.runScalarOn(w.scalarEngine(), faulted, attempt, w.tid())
			return
		}
		s.stats.retries.Add(int64(len(faulted)))
		if note := journeyNote(faulted, func() string {
			return "attempt=" + fmt.Sprint(attempt)
		}); note != "" {
			for _, q := range faulted {
				q.journey.Event("retry", s.cfg.Card, note)
			}
		}
		s.tracer.Instant(w.tid(), "retry",
			telemetry.Args{"lanes": len(faulted), "attempt": attempt})
		if !s.backoff(w, attempt) {
			for _, q := range faulted {
				s.finish(q, Result{Err: ErrCanceled})
			}
			return
		}
		pending = faulted
	}
}

// tracePass emits one kernel pass as a slice on the worker's track, with
// the workload's pass segments nested inside (the flame-graph view: the
// Bellcore-verified CRT quartet for the private-op kinds, a single "exp"
// span for the DHE and public kinds), and the cycle attribution riding in
// the args. The segment slices are laid out back to back from the pass
// start; context setup between them surfaces as the slice tail rather
// than as gaps.
func (s *Server) tracePass(w *worker, b *batch, start time.Time, bd *phiwork.Breakdown,
	fill, attempt int, cycles float64, phases knc.PhaseCycles, faulted int) {
	if s.tracer == nil {
		return
	}
	args := telemetry.Args{
		"key":           s.workTag(b.work),
		"workload":      string(b.work.Kind()),
		"fill":          fill,
		"attempt":       attempt,
		"sim_cycles":    cycles,
		"worker_cycles": w.meter.Cycles(),
	}
	for p := 0; p < vbatch.NumPhases; p++ {
		if phases[p] != 0 {
			args["cycles_"+vbatch.PhaseName(vpu.Phase(p))] = phases[p]
		}
	}
	if faulted > 0 {
		args["faulted_lanes"] = faulted
	}
	s.tracer.Slice(w.tid(), "pass", start, time.Since(start), args)
	t := start
	for _, seg := range bd.Segments {
		s.tracer.Slice(w.tid(), seg.Name, t, seg.Wall, nil)
		t = t.Add(seg.Wall)
	}
	if faulted > 0 {
		s.tracer.Instant(w.tid(), "fault-detected",
			telemetry.Args{"lanes": faulted, "attempt": attempt})
	}
}

// awaitStallRelease parks a stalled execution. It returns true when Close
// released it for a graceful drain (serve leftovers via the scalar path)
// and false when the server was canceled (fail leftovers).
func (s *Server) awaitStallRelease() bool {
	select {
	case <-s.release:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// backoff sleeps before retry pass `attempt` (1-based): exponential in the
// attempt with jitter drawn from the worker's seeded stream. It returns
// false when the server was canceled mid-sleep; a graceful Close instead
// cuts the sleep short and retries immediately.
func (s *Server) backoff(w *worker, attempt int) bool {
	base := s.cfg.Resilience.RetryBackoff
	if base <= 0 {
		return true
	}
	d := base << uint(attempt-1)
	half := d / 2
	j := d
	if half > 0 {
		j = half + time.Duration(w.rng.Int63n(int64(half)+1))
	}
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.release:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// runScalarOn serves requests one at a time on each workload's scalar
// fallback path — the degraded mode. For the private-op kinds that is the
// non-CRT verified op: a fault cannot leak a factor of N even in
// principle, and the scalar engine never touches the (possibly sick)
// vector unit. Each op appears in the trace as a "fallback-op" slice on
// the given track.
func (s *Server) runScalarOn(eng engine.Engine, reqs []*request, attempts int, tid int64) {
	for _, q := range reqs {
		if q.done.Load() {
			continue
		}
		// Scalar ops are serial and slow; re-judge each lane right before
		// spending an op on it so a deadline that expires mid-drain stops
		// costing cycles immediately.
		if q.ctxDone() {
			q.journey.Event("checkpoint", s.cfg.Card, "scalar")
			if s.finish(q, Result{Err: ErrCanceled}) {
				s.stats.canceledLanes.Inc()
			}
			continue
		}
		if q.expiredAt(time.Now()) {
			q.journey.Event("checkpoint", s.cfg.Card, "scalar")
			if s.finish(q, Result{Err: ErrDeadlineExceeded}) {
				s.stats.expiredLanes.Inc()
			}
			continue
		}
		q.journey.Event("fallback", s.cfg.Card, "attempt="+fmt.Sprint(attempts))
		eng.Reset()
		opStart := time.Now()
		m, err := q.work.ExecuteScalar(eng, q.in)
		cycles := eng.Cycles()
		simLat := s.cfg.Machine.Latency(s.cfg.Workers, cycles)
		s.tracer.Slice(tid, "fallback-op", opStart, time.Since(opStart),
			telemetry.Args{"req": q.id, "sim_cycles": cycles, "attempt": attempts})
		if err != nil {
			s.finish(q, Result{Err: err, Fallback: true, Attempts: attempts})
			continue
		}
		if s.finish(q, Result{
			M:           m,
			BatchFill:   1,
			BatchCycles: cycles,
			SimLatency:  simLat,
			Fallback:    true,
			Attempts:    attempts,
		}) {
			s.stats.recordFallback(cycles, simLat)
		}
	}
}

// retryTimedOut is the pool's onTimeout callback: the batch exceeded
// ExecTimeout (a stalled worker was just respawned). Re-dispatch it
// non-blockingly while retry budget remains; otherwise — or when the
// dispatch queue is full — serve the leftovers inline on a fresh scalar
// engine. Runs on the (respawned) worker's monitor goroutine, so inline
// scalar work here occupies exactly the hardware thread that stalled.
func (s *Server) retryTimedOut(b *batch) {
	nb := &batch{
		work:       b.work,
		reqs:       s.dropDeadLanes(b.reqs, "timeout-retry"),
		fallback:   b.fallback,
		attempts:   b.attempts + 1,
		enqueuedAt: time.Now(),
	}
	if len(nb.reqs) == 0 {
		return
	}
	s.tracer.Instant(s.ctl(), "batch-timeout",
		telemetry.Args{"lanes": len(nb.reqs), "attempt": nb.attempts})
	if !nb.fallback && nb.attempts <= s.cfg.Resilience.MaxRetries && s.breaker.healthy() {
		budget := s.cfg.Resilience.Budget
		if budget.Allow(len(nb.reqs)) {
			if s.pool.TrySubmit(nb) {
				return
			}
			// Withdrawn but not re-dispatched (queue full): give the
			// tokens back before degrading to scalar.
			budget.Refund(len(nb.reqs))
		} else {
			s.stats.budgetDenied.Add(int64(len(nb.reqs)))
			s.cfg.Journeys.Trigger("retry-budget-exhausted", map[string]any{
				"card": s.cfg.Card, "lanes": len(nb.reqs), "attempt": nb.attempts,
			})
		}
	}
	// Before burning this hardware thread on inline scalar ops, let a
	// sibling card pick up the leftovers.
	rest := nb.reqs[s.offerSteal(nb.work, nb.reqs, StealFaultRetry):]
	s.runScalarOn(baseline.NewMPSS(), rest, nb.attempts, s.ctl())
}
