// Package phiserve is the streaming batch scheduler: it accepts single
// crypto operations one at a time — the shape of live server traffic —
// and aggregates them per workload into vbatch.BatchSize-lane batches for
// the lane-per-operation vector kernels, which ablation A4 shows are
// cheaper per operation than the per-op (horizontal) engine once the
// lanes are full.
//
// The scheduler is generic over phiwork.Workload: the original RSA
// private op, PSS signing, the two DHE exponentiations and the cheap
// public op all ride the same pipeline. Aggregation is by Workload
// identity — requests carrying the same Workload instance (same key,
// same kind) fill the same batch — and execution defers to the
// workload's ExecuteBatch, so the scheduler never knows which kernel
// family a batch runs. Dispatch is class-aware: ClassLight batches
// (public ops) ride the pool's fast lane and a separate overflow list,
// so a flood of heavy private-op batches cannot starve them past their
// SLO.
//
// The scheduling policy is the classic batch-server trade: a request
// that arrives into an empty per-workload buffer opens a batch and arms
// a fill deadline; the batch dispatches when the sixteenth request
// arrives or when the deadline fires, whichever is first. Partial
// batches pad their unused lanes with a duplicated operand, so a partial
// dispatch costs a full kernel pass — the deadline is literally the knob
// trading latency (dispatch early, waste lanes) against throughput (wait
// for fills, queue longer).
//
// Execution runs on a persistent phipool.Server: long-lived workers each
// owning a private vector unit, a bounded batch queue whose fullness
// propagates as backpressure to Submit, graceful drain on Close, and
// fail-fast rejection of queued batches when the context is canceled.
// Results return asynchronously on a per-request channel together with
// the simulated per-request latency; Stats aggregates queue depth, the
// batch fill-rate histogram, cycles/op, simulated throughput and the
// resilience counters, with per-workload families alongside.
//
// Execution is verified and survivable (see resilience.go): verifying
// workloads run the Bellcore re-encryption check per lane, transient
// fault-detected lanes retry on fresh batches with exponential backoff
// and degrade to the workload's scalar path after MaxRetries, stalled
// workers are detected by an execution timeout and respawned, and a
// circuit breaker trips on the rolling pass-fault rate — while open,
// submissions bypass the vector path entirely and half-open probe
// batches test recovery.
package phiserve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/knc"
	"phiopenssl/internal/phipool"
	"phiopenssl/internal/phitrace"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/telemetry"
	"phiopenssl/internal/vpu"
)

// BatchSize is the number of lanes in one batch (one request per lane).
const BatchSize = rsakit.BatchSize

// Errors returned by Submit or delivered in Result.Err.
var (
	// ErrCanceled marks requests abandoned by context cancellation:
	// requests still waiting in a per-workload buffer or in a batch that
	// was queued but never executed. In-flight batches are drained, so
	// their requests complete normally.
	ErrCanceled = errors.New("phiserve: canceled")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("phiserve: server closed")
	// ErrNotStarted reports a Submit before Start.
	ErrNotStarted = errors.New("phiserve: server not started")
	// ErrDeadlineExceeded marks requests whose SLO deadline expired before
	// a kernel pass could serve them: rejected at Submit (deadline already
	// past), dropped when their batch sealed, or dropped at the dispatch
	// queue / pre-pass filter. The lane never burns card cycles.
	ErrDeadlineExceeded = errors.New("phiserve: deadline exceeded before execution")
	// ErrOverloaded marks requests shed because the scheduler's overflow
	// list hit its cap (Config.OverflowCap): the dispatch queue and the
	// overflow behind it are both full, so admitting more work would only
	// grow an unserveable backlog.
	ErrOverloaded = errors.New("phiserve: dispatch overflow full, request shed")
)

// Config parameterizes a Server.
type Config struct {
	// Machine is the simulated card; the zero value means knc.Default().
	Machine knc.Machine
	// Workers is the number of concurrent batch executors (simulated
	// hardware threads running kernel passes). Defaults to 4, clamped to
	// the machine's capacity.
	Workers int
	// FillDeadline is the host time a partial batch waits for more
	// requests before dispatching. Defaults to 2ms.
	FillDeadline time.Duration
	// QueueDepth bounds the dispatch queue between the scheduler and the
	// workers; a full queue blocks dispatch and, transitively, Submit
	// (backpressure). The light-class fast lane gets its own queue of the
	// same depth. Defaults to 2*Workers.
	QueueDepth int
	// OverflowCap bounds each of the scheduler's per-class overflow lists
	// (the batches parked when the dispatch queue is full). Intake
	// backpressure already stops new admissions of a class once its list
	// is QueueDepth deep, but deadline flushes of already-open workloads
	// and adopted lanes can still push past that; at the cap the newest
	// batch is shed with ErrOverloaded instead of growing an unserveable
	// backlog. Defaults to 8*QueueDepth.
	OverflowCap int
	// Backend selects how workers execute kernel passes:
	// vpu.BackendDirect (calibrated direct limb arithmetic, the serving
	// default) or vpu.BackendSim (the interpreted cycle-exact unit). Both
	// report identical simulated cycles; direct is several times faster in
	// host wall time. The zero value (vpu.BackendDefault) resolves via the
	// PHIOPENSSL_BACKEND environment variable ("sim" or "direct") and then
	// falls back to direct.
	Backend vpu.BackendKind
	// Resilience configures verified execution's retry/fallback policy,
	// the circuit breaker, the stall timeout and (for tests/benches) fault
	// injection. The zero value gives the defaults documented on the
	// Resilience type; execution is always verified regardless.
	Resilience Resilience
	// Telemetry attaches external observability sinks. A non-nil Registry
	// receives the scheduler's metric set (also served by
	// telemetry.Handler); a non-nil Tracer additionally records the
	// per-request lifecycle as Chrome trace events. Nil (the default)
	// means no tracing; metrics then live on a private registry so Stats
	// keeps working, reachable via Server.Telemetry.
	Telemetry *telemetry.Telemetry
	// Labels are key,value pairs stamped on every metric this server
	// registers (e.g. "card","0"). They are mandatory when several servers
	// share one registry: unlabeled duplicates would silently merge the
	// stateful counters, and the registry panics on the duplicate
	// function-backed metrics. The multi-card fleet labels each card.
	Labels []string
	// TrackBase offsets this server's trace tracks (TrackBase is the
	// scheduler/control track, TrackBase+1+i is worker i). Servers sharing
	// one Tracer — the fleet's cards — must use disjoint ranges.
	TrackBase int64
	// Redispatch, when non-nil, is offered work this server would rather
	// hand off than serve locally: deadline-fired partial batches,
	// fault-detected lanes awaiting a retry, and requests admitted while
	// the breaker is open. The hook (the fleet's work-stealing router)
	// returns how many operations, from the front of the slice, it moved
	// to a sibling server via Adopt; the rest stay here. See steal.go.
	Redispatch RedispatchFunc
	// Journeys, when non-nil, records a per-request journey (batch seal,
	// queue dequeue, kernel pass with its segment breakdown, retries,
	// fallback, expiry checkpoints) resolved with exactly one terminal
	// outcome at finish, and receives incident triggers on breaker
	// transitions and retry-budget exhaustion. A journey begun upstream
	// (the admission door or the fleet router) arrives in SubmitOpts
	// instead; requests adopted from a sibling card keep the journey they
	// came with.
	Journeys *phitrace.Recorder
	// Card is this server's index in a multi-card fleet, stamped on
	// journey events so a steal hop is visible as a card change. 0 for a
	// standalone server; the fleet sets it.
	Card int
}

func (c Config) withDefaults() Config {
	if c.Machine == (knc.Machine{}) {
		c.Machine = knc.Default()
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if max := c.Machine.MaxThreads(); c.Workers > max {
		c.Workers = max
	}
	if c.FillDeadline <= 0 {
		c.FillDeadline = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.OverflowCap < 1 {
		c.OverflowCap = 8 * c.QueueDepth
	}
	if c.Backend == vpu.BackendDefault {
		if k, ok := vpu.ParseBackend(os.Getenv("PHIOPENSSL_BACKEND")); ok && k != vpu.BackendDefault {
			c.Backend = k
		} else {
			c.Backend = vpu.BackendDirect
		}
	}
	c.Resilience = c.Resilience.withDefaults()
	return c
}

// Result is the outcome of one request.
type Result struct {
	// M is the workload's output for this lane (the plaintext c^D mod N
	// for rsa-priv, the signature rep for pss-sign, g^x or the shared
	// secret for the DHE kinds, m^E for public); valid when Err is nil.
	// On verifying workloads every value released here passed the
	// workload's check (the Bellcore re-encryption for the private-op
	// kinds) on the path that produced it.
	M bn.Nat
	// Err is ErrCanceled for abandoned requests, a permanent per-lane
	// error (e.g. a degenerate DHE shared secret), or the batch-level
	// failure that poisoned this request's batch.
	Err error
	// BatchFill is the number of live lanes in the batch that served this
	// request (1..BatchSize; always 1 on the scalar fallback path).
	BatchFill int
	// BatchCycles is the simulated cycle cost of the kernel pass (or
	// scalar op) that served this request.
	BatchCycles float64
	// SimLatency is this request's service latency in seconds on the
	// simulated machine: one kernel pass at the server's worker count
	// (queueing delay is host-side and reported by the A6 load model).
	SimLatency float64
	// Fallback reports that the request was served by the workload's
	// scalar path: the breaker was open, or retries were exhausted.
	Fallback bool
	// Attempts is the number of failed vector passes this request survived
	// before the pass (or fallback) that resolved it; 0 on a clean first
	// pass.
	Attempts int
}

// request is one queued operation. A request's pointer can travel between
// servers (the fleet's work stealing moves it via Adopt), so everything
// needed to resolve it rides inside: the span string fixed at Submit
// keeps trace identity unique across cards, and the done CAS keeps
// resolution exactly-once no matter how many cards race.
type request struct {
	id   int64  // per-server ordinal, assigned by Submit
	span string // trace-span identity, globally unique (TrackBase-scoped)
	work phiwork.Workload
	in   phiwork.Input
	at   time.Time    // Submit time, for the wall-latency histogram
	resp chan Result  // buffered(1); receives exactly one Result
	done atomic.Bool  // set by Server.finish; guards exactly-once delivery
	hops atomic.Int32 // Adopt count, bounding steal ping-pong

	// Admission metadata (SubmitOpts). deadline is the absolute SLO
	// deadline — zero means none; a lane past it is dropped at the next
	// checkpoint (batch seal, dispatch dequeue, pre-pass filter) instead
	// of burning card cycles. ctx is the submitter's context, checked at
	// the same checkpoints so an abandoned request frees its lane. tenant
	// rides along for the admission layer's accounting.
	deadline time.Time
	ctx      context.Context
	tenant   string
	// journey is the request's phitrace record (nil when journeys are
	// off). It carries its own recorder, so a stolen request resolves
	// into the right ring no matter which card finishes it.
	journey *phitrace.Journey
}

// expiredAt reports whether the request's deadline (if any) has passed.
func (q *request) expiredAt(now time.Time) bool {
	return !q.deadline.IsZero() && now.After(q.deadline)
}

// ctxDone reports whether the submitter abandoned the request.
func (q *request) ctxDone() bool {
	return q.ctx != nil && q.ctx.Err() != nil
}

// batch is the scheduler's dispatch unit.
type batch struct {
	work phiwork.Workload
	reqs []*request
	// fallback routes the batch straight to the scalar path (breaker open
	// at admission).
	fallback bool
	// attempts counts execution attempts already spent on this batch's
	// requests (stall-timeout re-dispatches).
	attempts int
	// enqueuedAt stamps the hand-off to the dispatch queue, for the
	// queue-wait histogram.
	enqueuedAt time.Time
}

// pending is one workload's open batch: requests accumulated since the
// buffer was last empty, plus the deadline timer and the generation
// guarding it.
type pending struct {
	reqs     []*request
	gen      uint64
	timer    *time.Timer
	openedAt time.Time // first request's arrival, for the fill-window slice
}

// flushMsg asks the scheduler to dispatch a workload's open batch if it
// still belongs to the generation whose timer fired.
type flushMsg struct {
	work phiwork.Workload
	gen  uint64
}

// Server is the streaming batch scheduler. Requests for the same
// workload must be submitted with the same phiwork.Workload instance —
// the scheduler aggregates by identity (the phiwork.*For caches are the
// canonicalization point), the natural shape for a server holding a
// fixed key set.
type Server struct {
	cfg  Config
	pool *phipool.Server[*worker, *batch]

	// intake is the heavy-class submission channel; intakeLight carries
	// ClassLight (public-op) requests so heavy backpressure cannot block
	// cheap submissions.
	intake      chan *request
	intakeLight chan *request
	flush       chan flushMsg

	ctx       context.Context
	cancel    context.CancelFunc
	schedDone chan struct{}

	// breaker gates the vector path on the rolling fault rate.
	breaker *breaker
	// release is closed by Close before the pool drains: workers parked on
	// an injected stall wake up and serve their leftovers via the scalar
	// path so the drain can finish.
	release     chan struct{}
	releaseOnce sync.Once
	// workerSeq numbers worker states for per-worker fault/jitter seeds;
	// respawned workers get fresh numbers (fresh schedules).
	workerSeq atomic.Int64
	// passWall is the EWMA of recent heavy-class kernel-pass host wall
	// times (float64 bits), feeding EstimatedDelay; zero until the first
	// pass completes. Light passes are excluded — they are an order of
	// magnitude cheaper and would drag the heavy sojourn estimate down.
	passWall atomic.Uint64

	mu       sync.Mutex
	started  bool
	closed   bool
	inFlight sync.WaitGroup // Submits between the closed check and the enqueue

	// tel is the server's telemetry bundle: the caller's, or a private
	// metrics-only bundle so the registry (and hence Stats) always exists.
	tel    *telemetry.Telemetry
	tracer *telemetry.Tracer
	// reqSeq numbers requests for trace-span identities.
	reqSeq atomic.Int64
	// workTags caches a short display tag per workload for trace labels,
	// bounded by workTagCacheMax (see workTag).
	workTags     sync.Map // phiwork.Workload -> string
	workTagSeq   atomic.Int64
	workTagCount atomic.Int64

	stats *statsAcc
}

// New validates cfg (applying defaults) and builds a stopped server; call
// Start before Submit.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Machine.MaxThreads() < 1 {
		return nil, fmt.Errorf("phiserve: machine %q has no hardware threads", cfg.Machine.Name)
	}
	r := cfg.Resilience
	tel := cfg.Telemetry
	if tel == nil || tel.Registry == nil {
		// Stats is a view over the registry, so the server always carries
		// one; without caller-provided telemetry it stays private (and a
		// caller-provided Tracer without a Registry still records).
		priv := telemetry.NewRegistry()
		if tel == nil {
			tel = &telemetry.Telemetry{Registry: priv}
		} else {
			tel = &telemetry.Telemetry{Registry: priv, Tracer: tel.Tracer}
		}
	}
	s := &Server{
		cfg:         cfg,
		intake:      make(chan *request, BatchSize),
		intakeLight: make(chan *request, BatchSize),
		flush:       make(chan flushMsg, 1),
		schedDone:   make(chan struct{}),
		breaker: newBreaker(r.BreakerWindow, r.BreakerThreshold,
			r.BreakerMinSamples, r.BreakerCooldown),
		release: make(chan struct{}),
		tel:     tel,
		tracer:  tel.Tracer,
		stats:   newStatsAcc(tel.Registry, cfg.Labels),
	}
	s.breaker.onTransition = s.breakerTransition
	s.tel.Registry.CounterFunc("phiserve_breaker_trips_total",
		"closed->open (and failed-probe) breaker transitions",
		func() float64 { _, trips := s.breaker.snapshot(); return float64(trips) },
		cfg.Labels...)
	pool, err := phipool.NewServer(cfg.Machine, cfg.Workers, cfg.QueueDepth,
		s.newWorker, s.runBatch, s.rejectBatch)
	if err != nil {
		return nil, err
	}
	// The light-class fast lane: cheap public-op batches bypass the heavy
	// dispatch queue entirely, so a heavy flood cannot starve them.
	pool.SetFastLane(cfg.QueueDepth, func(b *batch) bool {
		return b.work.Class() == phiwork.ClassLight
	})
	if r.ExecTimeout > 0 {
		pool.SetJobTimeout(r.ExecTimeout, s.retryTimedOut)
	}
	// Deadline-aware drop at the dispatch queue: a batch none of whose
	// lanes is still worth executing is resolved by the expiry handler
	// instead of occupying a worker. Lane death is monotone (a canceled
	// or expired lane never comes back), so the predicate cannot race a
	// batch back to life between the check and the handler.
	pool.SetJobExpiry(s.batchDead, s.resolveDeadBatch)
	pool.SetDequeueObserver(s.observeDequeue)
	pool.Instrument(s.tel.Registry, "phipool", cfg.Labels...)
	s.pool = pool
	s.tel.Registry.GaugeFunc("phiserve_estimated_delay_seconds",
		"sojourn estimate for a newly admitted request (fill wait + backlog drain + one pass)",
		func() float64 { return s.EstimatedDelay().Seconds() }, cfg.Labels...)
	if r.Budget != nil {
		s.tel.Registry.GaugeFunc("phiserve_retry_budget_tokens",
			"tokens available in the shared fault-retry budget",
			func() float64 { return r.Budget.Tokens() }, cfg.Labels...)
	}
	return s, nil
}

// batchDead reports whether no lane of b is worth executing anymore:
// every request is already resolved, canceled, or past its deadline.
func (s *Server) batchDead(b *batch) bool {
	now := time.Now()
	for _, q := range b.reqs {
		if !q.done.Load() && !q.ctxDone() && !q.expiredAt(now) {
			return false
		}
	}
	return true
}

// resolveDeadBatch is the pool's expiry handler: it resolves (and counts)
// the lanes of a batch that died waiting in the dispatch queue.
func (s *Server) resolveDeadBatch(b *batch) {
	s.dropDeadLanes(b.reqs, "pool-dequeue")
}

// Telemetry returns the server's telemetry bundle: the one supplied in
// Config, or the private metrics-only bundle the server built. Serving
// telemetry.Handler(s.Telemetry()) exposes the live /metrics, /vars and
// /trace endpoints for this server.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// workTagCacheMax bounds the workTags cache. A long-lived server seeing
// millions of distinct workloads must not grow the map forever; the tags
// only feed trace labels, so when the cap is hit the cache is simply
// reset — a workload seen again after a reset gets a new ordinal, which
// is harmless.
const workTagCacheMax = 1024

// KeyTag exposes the short display tag ("rsa-1024#2") of the key's
// rsa-priv workload — the compat spelling of WorkTag for RSA-only
// callers.
func (s *Server) KeyTag(key *rsakit.PrivateKey) string {
	return s.workTag(phiwork.RSAPrivateFor(key))
}

// WorkTag exposes a workload's short display tag ("dhe-fixed-modp2048#3")
// so a fleet router can label the journeys it begins with the same tag
// the card's own spans and journey events use.
func (s *Server) WorkTag(w phiwork.Workload) string { return s.workTag(w) }

// workTag returns a stable short label for a workload: its Tag plus an
// arrival ordinal distinguishing same-shape instances ("rsa-1024#2").
func (s *Server) workTag(w phiwork.Workload) string {
	if tag, ok := s.workTags.Load(w); ok {
		return tag.(string)
	}
	tag := w.Tag() + "#" + strconv.FormatInt(s.workTagSeq.Add(1), 10)
	if prev, loaded := s.workTags.LoadOrStore(w, tag); loaded {
		return prev.(string)
	}
	if s.workTagCount.Add(1) > workTagCacheMax {
		// Wholesale eviction: concurrent readers just re-insert their
		// workloads. Racing resetters double-clear at worst — the count
		// only shrinks.
		s.workTags.Range(func(k, _ any) bool {
			s.workTags.Delete(k)
			return true
		})
		s.workTagCount.Store(0)
	}
	return tag
}

// breakerTransition is the breaker's state-change hook: it keeps the
// breaker-state gauge current and drops an instant event on the control
// track. Runs under the breaker's lock — it must not call back into it,
// which is why the incident trigger runs on its own goroutine: the
// trigger snapshots fleet stats, and those read the breaker.
func (s *Server) breakerTransition(from, to breakerState) {
	s.stats.breakerGauge.Set(float64(to))
	s.tracer.Instant(s.ctl(), "breaker-"+to.String(),
		telemetry.Args{"from": from.String()})
	if r := s.cfg.Journeys; r != nil {
		go r.Trigger("breaker-"+to.String(), map[string]any{
			"card": s.cfg.Card, "from": from.String(),
		})
	}
}

// JourneyOutcome maps a Result error to its journey terminal outcome; the
// admission and fleet layers reuse it for requests they resolve at their
// own doors.
func JourneyOutcome(err error) phitrace.Outcome {
	switch {
	case err == nil:
		return phitrace.OutcomeCompleted
	case errors.Is(err, ErrDeadlineExceeded):
		return phitrace.OutcomeExpired
	case errors.Is(err, ErrOverloaded):
		return phitrace.OutcomeShedOverflow
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled),
		errors.Is(err, ErrClosed), errors.Is(err, ErrNotStarted):
		return phitrace.OutcomeCanceled
	default:
		return phitrace.OutcomeFaulted
	}
}

// finish resolves a request exactly once: with stalled-batch respawns and
// retried passes, more than one execution path can race to answer the
// same request, and only the first wins (reported by the return). As the
// single resolution point it also owns completion accounting — the
// completed/failed counters (total and per-workload), the wall-latency
// histogram, and the close of the request's trace span.
func (s *Server) finish(q *request, res Result) bool {
	if !q.done.CompareAndSwap(false, true) {
		return false
	}
	if res.Err != nil {
		s.stats.failed.Inc()
	} else {
		s.stats.completed.Inc()
		s.stats.workload(q.work.Kind()).completed.Inc()
		s.stats.wallLatency.Observe(time.Since(q.at).Seconds())
		// Successful work funds future fault recovery (see RetryBudget).
		s.cfg.Resilience.Budget.Deposit(1)
	}
	if q.journey != nil {
		note := ""
		if res.Err != nil {
			note = res.Err.Error()
		} else if res.BatchFill > 0 {
			note = "fill=" + strconv.Itoa(res.BatchFill)
		}
		q.journey.Finish(JourneyOutcome(res.Err), note)
	}
	if s.tracer != nil {
		args := telemetry.Args{
			"fill":     res.BatchFill,
			"attempts": res.Attempts,
			"fallback": res.Fallback,
		}
		if res.Err != nil {
			args["err"] = res.Err.Error()
		} else {
			args["sim_cycles"] = res.BatchCycles
		}
		s.tracer.SpanEnd(q.span, "request", args)
	}
	q.resp <- res
	return true
}

// dropDeadLanes filters a request slice down to the lanes still worth
// executing: already-resolved lanes are skipped silently; canceled and
// deadline-expired lanes are resolved (and counted) here. Every point
// that is about to spend card time on a slice runs it — batch seal, the
// dispatch queue's expiry check, the pre-pass filter, the retry loop and
// the scalar path — so a dead lane can never reach kernel execution, for
// any workload class. checkpoint names the call site on the dropped
// lane's journey, answering "which of the checkpoints caught it".
func (s *Server) dropDeadLanes(reqs []*request, checkpoint string) []*request {
	now := time.Now()
	live := make([]*request, 0, len(reqs))
	for _, q := range reqs {
		switch {
		case q.done.Load():
		case q.ctxDone():
			q.journey.Event("checkpoint", s.cfg.Card, checkpoint)
			if s.finish(q, Result{Err: ErrCanceled}) {
				s.stats.canceledLanes.Inc()
			}
		case q.expiredAt(now):
			q.journey.Event("checkpoint", s.cfg.Card, checkpoint)
			if s.finish(q, Result{Err: ErrDeadlineExceeded}) {
				s.stats.expiredLanes.Inc()
			}
		default:
			live = append(live, q)
		}
	}
	return live
}

// journeyNote builds an event note only when some lane actually carries a
// journey, so journey-off runs (and adopted-lane-free hot paths) skip the
// string formatting entirely.
func journeyNote(reqs []*request, build func() string) string {
	for _, q := range reqs {
		if q.journey != nil {
			return build()
		}
	}
	return ""
}

// observeDequeue is the pool's dequeue observer: it stamps queue wait and
// the pool slot onto every journeyed lane the moment a worker picks the
// batch up — before the expiry judgment, so even a batch about to be
// dropped records how long it queued.
func (s *Server) observeDequeue(slot int, b *batch) {
	note := journeyNote(b.reqs, func() string {
		wait := time.Duration(0)
		if !b.enqueuedAt.IsZero() {
			wait = time.Since(b.enqueuedAt)
		}
		return "slot=" + strconv.Itoa(slot) + " wait=" + wait.Round(time.Microsecond).String()
	})
	if note == "" {
		return
	}
	for _, q := range b.reqs {
		q.journey.Event("dequeue", s.cfg.Card, note)
	}
}

// ewmaAlpha weights the per-batch service-time estimate toward recent
// passes; at 0.25 the estimate settles within a handful of batches after
// a load or key-size shift.
const ewmaAlpha = 0.25

// observePass folds one heavy kernel pass's host wall time into the
// rolling per-batch service-time estimate behind EstimatedDelay.
func (s *Server) observePass(d time.Duration) {
	sec := d.Seconds()
	for {
		old := s.passWall.Load()
		prev := math.Float64frombits(old)
		next := sec
		if prev > 0 {
			next = ewmaAlpha*sec + (1-ewmaAlpha)*prev
		}
		if s.passWall.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// EstimatedDelay is the telemetry-derived sojourn estimate for a newly
// admitted heavy-class request: the fill-deadline wait, plus the backlog
// (dispatch queue + overflow lists) drained at one recent-mean pass per
// worker, plus the request's own pass. The admission layer
// (internal/phiadmit) sheds at the door when this exceeds a request's
// remaining deadline budget, and the fleet router uses the per-card
// values to route past a card whose backlog would blow the budget.
// Before the first pass completes the estimate is just the fill deadline
// — a cold server admits freely.
func (s *Server) EstimatedDelay() time.Duration {
	pass := math.Float64frombits(s.passWall.Load())
	if pass <= 0 {
		return s.cfg.FillDeadline
	}
	backlog := float64(s.pool.QueueDepth()) + s.stats.overflowDepth.Value()
	sojourn := (backlog/float64(s.cfg.Workers) + 1) * pass
	return s.cfg.FillDeadline + time.Duration(sojourn*float64(time.Second))
}

// ctl is the trace track for the scheduler goroutine, breaker transitions
// and the timeout monitor: Config.TrackBase (0 for a standalone server).
// Workers use ctl()+1+idx, so servers sharing a Tracer stay on disjoint
// rows.
func (s *Server) ctl() int64 { return s.cfg.TrackBase }

// trackName decorates a trace-track name with the server's labels
// ("scheduler [card=2]"), so fleet traces stay readable.
func (s *Server) trackName(base string) string {
	if len(s.cfg.Labels) < 2 {
		return base
	}
	var sb []byte
	sb = append(sb, base...)
	sb = append(sb, " ["...)
	for i := 0; i+1 < len(s.cfg.Labels); i += 2 {
		if i > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, s.cfg.Labels[i]...)
		sb = append(sb, '=')
		sb = append(sb, s.cfg.Labels[i+1]...)
	}
	sb = append(sb, ']')
	return string(sb)
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Start launches the workers and the scheduler goroutine. Canceling ctx
// fails fast: in-flight batches drain, buffered and queued requests
// resolve with ErrCanceled. Close must still be called afterwards to
// release the server's goroutines.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("phiserve: Server started twice")
	}
	s.started = true
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.mu.Unlock()

	s.tracer.NameThread(s.ctl(), s.trackName("scheduler"))
	s.pool.Start(s.ctx)
	go s.schedule()
}

// SubmitOpts is the admission metadata attached to one request.
type SubmitOpts struct {
	// Tenant identifies the traffic class for the admission layer's
	// per-tenant accounting (internal/phiadmit); empty is fine.
	Tenant string
	// Deadline is the absolute SLO deadline: a lane still unexecuted past
	// it resolves with ErrDeadlineExceeded instead of occupying a kernel
	// pass. Zero means no deadline. When zero and ctx carries a deadline,
	// the context's deadline is used.
	Deadline time.Time
	// Journey, when non-nil, is the request's journey record begun
	// upstream (the admission door or the fleet router); the scheduler
	// appends its events there and resolves it at finish. When nil and
	// Config.Journeys is set, the server begins one itself.
	Journey *phitrace.Journey
}

// Submit enqueues one private-key operation c^D mod N and returns the
// channel its Result will arrive on — the compat spelling of SubmitWork
// over the key's canonical rsa-priv workload. ctx bounds only this call's
// wait (backpressure can block it); once nil is returned, exactly one
// Result is guaranteed to arrive. c must be in [0, key.N).
func (s *Server) Submit(ctx context.Context, key *rsakit.PrivateKey, c bn.Nat) (<-chan Result, error) {
	return s.SubmitWith(ctx, key, c, SubmitOpts{})
}

// SubmitWith is Submit with admission metadata.
func (s *Server) SubmitWith(ctx context.Context, key *rsakit.PrivateKey, c bn.Nat, opts SubmitOpts) (<-chan Result, error) {
	if key == nil {
		return nil, fmt.Errorf("phiserve: nil key")
	}
	return s.SubmitWork(ctx, phiwork.RSAPrivateFor(key), phiwork.Input{A: c}, opts)
}

// SubmitWork enqueues one operation of any registered workload kind, with
// admission metadata: a tenant id and an SLO deadline that travel with
// the request through the scheduler, the dispatch queue, work stealing
// and the worker pool. The input is validated by the workload before it
// can occupy a lane; an already-expired context or deadline is rejected
// here — the request never reaches the pool. After admission, ctx keeps
// mattering: a request whose context is canceled while it waits is
// dropped at the next checkpoint (batch seal, queue dequeue, pre-pass
// filter) and resolves with ErrCanceled.
//
// Requests aggregate into batches by Workload instance identity: resolve
// instances through the phiwork.*For caches (or reuse your own) so equal
// identities share batches.
func (s *Server) SubmitWork(ctx context.Context, w phiwork.Workload, in phiwork.Input, opts SubmitOpts) (<-chan Result, error) {
	if w == nil {
		return nil, fmt.Errorf("phiserve: nil workload")
	}
	if err := w.Validate(in); err != nil {
		return nil, err
	}
	// Reject dead-on-arrival work before it can occupy a lane: a canceled
	// context, or a deadline that has already passed.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now()
	deadline := opts.Deadline
	if deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
	}
	if !deadline.IsZero() && now.After(deadline) {
		s.stats.expiredLanes.Inc()
		return nil, ErrDeadlineExceeded
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, ErrNotStarted
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	defer s.inFlight.Done()

	// Fail fast once canceled, so a free intake slot cannot win the
	// select against an already-dead server.
	select {
	case <-s.ctx.Done():
		return nil, ErrCanceled
	default:
	}
	// Adopt the journey begun upstream (door or fleet router), or begin
	// one here for direct submissions. Journeys this call begins are also
	// resolved here on the rejection paths below; an upstream creator
	// resolves its own on our error return instead.
	journey := opts.Journey
	ownJourney := false
	if journey == nil && s.cfg.Journeys != nil {
		slo := time.Duration(0)
		if !deadline.IsZero() {
			slo = deadline.Sub(now)
		}
		journey = s.cfg.Journeys.BeginWork(opts.Tenant, s.workTag(w),
			string(w.Kind()), deadline, slo)
		ownJourney = true
		journey.Event("workload", s.cfg.Card, string(w.Kind()))
	}
	journey.Event("submit", s.cfg.Card, "")
	req := &request{
		id:       s.reqSeq.Add(1),
		work:     w,
		in:       in,
		at:       now,
		resp:     make(chan Result, 1),
		deadline: deadline,
		ctx:      ctx,
		tenant:   opts.Tenant,
		journey:  journey,
	}
	// The span ID is scoped by TrackBase so fleets sharing one Tracer
	// never collide (every card's reqSeq counts 1,2,3...), and it is
	// fixed here because the request may be resolved by a different
	// server after a steal.
	req.span = strconv.FormatInt(s.cfg.TrackBase, 10) + "." +
		strconv.FormatInt(req.id, 10)
	// The span opens before the enqueue: once the request is in the
	// intake, a worker can resolve it (and close the span) before this
	// goroutine runs another line. The rejection paths below close the
	// span themselves so begins and ends stay balanced.
	if s.tracer != nil {
		args := telemetry.Args{"key": s.workTag(w), "workload": string(w.Kind())}
		if req.tenant != "" {
			args["tenant"] = req.tenant
		}
		if journey != nil {
			// Cross-link: the journey id in the span args lets a Perfetto
			// view jump to the /journeys record and vice versa.
			args["journey"] = journey.ID()
		}
		s.tracer.SpanBegin(req.span, "request", args)
	}
	// Light-class requests ride their own intake so heavy backpressure
	// (a closed heavy gate, a full heavy intake buffer) cannot block a
	// cheap submission behind it.
	intake := s.intake
	if w.Class() == phiwork.ClassLight {
		intake = s.intakeLight
	}
	select {
	case intake <- req:
		s.stats.submitted.Inc()
		s.stats.workload(w.Kind()).submitted.Inc()
		return req.resp, nil
	case <-s.ctx.Done():
		s.tracer.SpanEnd(req.span, "request", telemetry.Args{"err": "not submitted"})
		if ownJourney {
			journey.Finish(phitrace.OutcomeCanceled, "not submitted")
		}
		return nil, ErrCanceled
	case <-ctx.Done():
		s.tracer.SpanEnd(req.span, "request", telemetry.Args{"err": "not submitted"})
		if ownJourney {
			journey.Finish(phitrace.OutcomeCanceled, "not submitted")
		}
		return nil, ctx.Err()
	}
}

// Do is the synchronous convenience wrapper: Submit then wait.
func (s *Server) Do(ctx context.Context, key *rsakit.PrivateKey, c bn.Nat) (Result, error) {
	ch, err := s.Submit(ctx, key, c)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// DoWork is the synchronous convenience wrapper over SubmitWork.
func (s *Server) DoWork(ctx context.Context, w phiwork.Workload, in phiwork.Input) (Result, error) {
	ch, err := s.SubmitWork(ctx, w, in, SubmitOpts{})
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close shuts the server down. If the context is still alive this is a
// graceful drain: open partial batches dispatch immediately and every
// queued batch executes. After cancellation it instead reaps the
// goroutines and fails any straggling requests with ErrCanceled. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.started || s.closed {
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.schedDone
			s.pool.Close()
		}
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.inFlight.Wait()    // racing Submits have enqueued or given up
	close(s.intake)      // scheduler flushes pending and exits...
	close(s.intakeLight) // ...once both intakes are drained
	// Wake workers parked on injected stalls before waiting on the
	// scheduler: the scheduler's final act is flushing its overflow lists
	// through the blocking path, which needs queue slots that only free
	// up when parked workers drain their batches via the scalar path.
	s.releaseOnce.Do(func() { close(s.release) })
	<-s.schedDone
	// After cancellation the scheduler exits without draining the intake
	// buffers; resolve whatever it left behind.
	for req := range s.intake {
		s.finish(req, Result{Err: ErrCanceled})
	}
	for req := range s.intakeLight {
		s.finish(req, Result{Err: ErrCanceled})
	}
	s.pool.Close()
	s.cancel()
}

// overflowPollInterval is how often the scheduler retries its overflow
// lists against the dispatch queues while either is non-empty. Small
// against the default FillDeadline (2ms), so an overflowed batch reaches
// a freed queue slot promptly.
const overflowPollInterval = 250 * time.Microsecond

// schedule is the single goroutine that owns the per-workload buffers.
//
// Dispatch never blocks this goroutine: a batch the queue cannot take
// goes onto the scheduler-owned overflow list for its class and is
// retried on a short poll. Blocking here — the old behavior — was
// head-of-line blocking for the whole server: one workload saturating
// the dispatch queue froze fill deadlines and intake for every other.
// Backpressure survives the fix, per class: once a class's overflow list
// is QueueDepth deep the scheduler stops pulling that class's intake (a
// nil channel never selects), so that intake buffer fills and Submit
// blocks — while the other class, deadline flushes and cancellation keep
// being served. A heavy flood therefore backpressures heavy submitters
// without ever gating the light lane.
func (s *Server) schedule() {
	defer close(s.schedDone)
	open := make(map[phiwork.Workload]*pending)
	var gen uint64

	// Per-class overflow lists (indexed by phiwork.Class), oldest first;
	// only this goroutine touches them.
	var overflow [2][]*batch
	poll := time.NewTimer(overflowPollInterval)
	if !poll.Stop() {
		<-poll.C
	}
	pollArmed := false

	drainClass := func(cls phiwork.Class) {
		q := overflow[cls]
		for len(q) > 0 {
			if !s.pool.TrySubmit(q[0]) {
				overflow[cls] = q
				return
			}
			q[0] = nil // release the batch to the GC
			q = q[1:]
			s.stats.overflowDepth.Add(-1)
		}
		overflow[cls] = nil
	}
	drainOverflow := func() {
		// Light first: its queue frees independently and its batches are
		// closest to their (tight) SLOs.
		drainClass(phiwork.ClassLight)
		drainClass(phiwork.ClassHeavy)
	}
	enqueue := func(b *batch) {
		cls := b.work.Class()
		b.enqueuedAt = time.Now()
		drainClass(cls) // keep FIFO within the class: older batches go first
		if len(overflow[cls]) == 0 && s.pool.TrySubmit(b) {
			return
		}
		if len(overflow[cls]) >= s.cfg.OverflowCap {
			// The queue and the overflow behind it are both full: shed the
			// newest batch instead of growing an unserveable backlog. Old
			// batches keep their FIFO position — they are closest to their
			// deadlines.
			for _, r := range b.reqs {
				if s.finish(r, Result{Err: ErrOverloaded}) {
					s.stats.overflowDropped.Inc()
				}
			}
			return
		}
		overflow[cls] = append(overflow[cls], b)
		s.stats.overflowed.Inc()
		s.stats.overflowDepth.Add(1)
		if note := journeyNote(b.reqs, func() string {
			return "depth=" + strconv.Itoa(len(overflow[cls])) + " class=" + cls.String()
		}); note != "" {
			for _, r := range b.reqs {
				r.journey.Event("overflow", s.cfg.Card, note)
			}
		}
	}

	dispatch := func(w phiwork.Workload, byDeadline bool) {
		p := open[w]
		delete(open, w)
		p.timer.Stop()
		s.stats.pendingLanes.Add(float64(-len(p.reqs)))
		if s.tracer != nil {
			s.tracer.Slice(s.ctl(), "batch-fill", p.openedAt,
				time.Since(p.openedAt), telemetry.Args{
					"lanes": len(p.reqs), "key": s.workTag(w)})
		}
		// Batch seal is the first drop checkpoint: lanes whose submitter
		// canceled while they buffered, or whose deadline already expired,
		// resolve here instead of riding a kernel pass.
		reqs := s.dropDeadLanes(p.reqs, "seal")
		if len(reqs) == 0 {
			return
		}
		if note := journeyNote(reqs, func() string {
			n := "fill=" + strconv.Itoa(len(reqs))
			if byDeadline {
				n += " deadline-fired"
			}
			return n
		}); note != "" {
			for _, q := range reqs {
				q.journey.Event("seal", s.cfg.Card, note)
			}
		}
		if byDeadline && len(reqs) < BatchSize {
			// A deadline-fired partial batch is the work-stealing hook's
			// bread and butter: a sibling card may have lanes of the same
			// workload open, or simply be idle.
			reqs = reqs[s.offerSteal(w, reqs, StealPartialDeadline):]
			if len(reqs) == 0 {
				return
			}
		}
		enqueue(&batch{work: w, reqs: reqs})
	}
	failAll := func() {
		for w, p := range open {
			p.timer.Stop()
			for _, r := range p.reqs {
				s.finish(r, Result{Err: ErrCanceled})
			}
			s.stats.pendingLanes.Add(float64(-len(p.reqs)))
			delete(open, w)
		}
		for cls := range overflow {
			for _, b := range overflow[cls] {
				for _, r := range b.reqs {
					s.finish(r, Result{Err: ErrCanceled})
				}
			}
			overflow[cls] = nil
		}
		s.stats.overflowDepth.Set(0)
	}
	handle := func(req *request) {
		if s.breaker.degraded() {
			// Breaker open: don't buffer toward a vector batch that will
			// not run. A healthy sibling card may take the request;
			// otherwise dispatch straight to the scalar fallback, one
			// request per job.
			reqs := []*request{req}
			if s.offerSteal(req.work, reqs, StealDegraded) > 0 {
				return
			}
			enqueue(&batch{work: req.work, reqs: reqs, fallback: true})
			return
		}
		p := open[req.work]
		if p == nil {
			gen++
			p = &pending{gen: gen, timer: s.armDeadline(req.work, gen),
				openedAt: time.Now()}
			open[req.work] = p
		}
		p.reqs = append(p.reqs, req)
		s.stats.pendingLanes.Add(1)
		if len(p.reqs) == BatchSize {
			dispatch(req.work, false)
		}
	}
	gracefulFlush := func() {
		// Graceful close: dispatch every open partial batch, then flush
		// the overflow lists through the blocking path — Close has
		// already released parked workers, so the queues drain.
		for w := range open {
			dispatch(w, false)
		}
		for cls := range overflow {
			for _, b := range overflow[cls] {
				s.submitBatch(b)
			}
			overflow[cls] = nil
		}
		s.stats.overflowDepth.Set(0)
	}

	heavyIn, lightIn := s.intake, s.intakeLight
	for {
		// Per-class backpressure: with a class's overflow list QueueDepth
		// deep, stop pulling that class's intake until a poll drains some
		// of it. A closed-and-drained intake goes nil permanently.
		intake := heavyIn
		if len(overflow[phiwork.ClassHeavy]) >= s.cfg.QueueDepth {
			intake = nil
		}
		intakeLight := lightIn
		if len(overflow[phiwork.ClassLight]) >= s.cfg.QueueDepth {
			intakeLight = nil
		}
		if len(overflow[phiwork.ClassHeavy])+len(overflow[phiwork.ClassLight]) > 0 && !pollArmed {
			poll.Reset(overflowPollInterval)
			pollArmed = true
		}
		select {
		case <-s.ctx.Done():
			failAll()
			return
		case <-poll.C:
			pollArmed = false
			drainOverflow()
		case msg := <-s.flush:
			if p, ok := open[msg.work]; ok && p.gen == msg.gen {
				s.stats.deadlineFires.Add(1)
				dispatch(msg.work, true)
			}
		case req, ok := <-intake:
			if !ok {
				heavyIn = nil
				if lightIn == nil {
					gracefulFlush()
					return
				}
				continue
			}
			handle(req)
		case req, ok := <-intakeLight:
			if !ok {
				lightIn = nil
				if heavyIn == nil {
					gracefulFlush()
					return
				}
				continue
			}
			handle(req)
		}
	}
}

// submitBatch hands a batch to the pool through the blocking path,
// failing its requests if the pool is already dead. Only the final
// overflow flush on graceful close uses it; live dispatch goes through
// the scheduler's non-blocking enqueue.
func (s *Server) submitBatch(b *batch) {
	if b.enqueuedAt.IsZero() {
		b.enqueuedAt = time.Now()
	}
	if err := s.pool.Submit(s.ctx, b); err != nil {
		// The pool's context is a child of s.ctx, so cancellation can
		// surface either as the pool's sentinel or as the caller
		// context's own error, depending on which select case wins.
		if errors.Is(err, phipool.ErrCanceled) || errors.Is(err, context.Canceled) {
			err = ErrCanceled
		}
		for _, r := range b.reqs {
			s.finish(r, Result{Err: err})
		}
	}
}

// armDeadline schedules a flush for (work, gen) after the fill deadline.
// The generation guard makes a timer that races its own Stop harmless:
// the scheduler ignores flushes whose generation is stale.
func (s *Server) armDeadline(w phiwork.Workload, gen uint64) *time.Timer {
	return time.AfterFunc(s.cfg.FillDeadline, func() {
		select {
		case s.flush <- flushMsg{work: w, gen: gen}:
		case <-s.ctx.Done():
		case <-s.schedDone:
		}
	})
}

// rejectBatch fails a batch abandoned in the dispatch queue by
// cancellation.
func (s *Server) rejectBatch(b *batch) {
	for _, r := range b.reqs {
		s.finish(r, Result{Err: ErrCanceled})
	}
}

// Stats returns a consistent snapshot of the server's counters.
func (s *Server) Stats() Stats {
	bstate, trips := s.breaker.snapshot()
	return s.stats.snapshot(s.cfg, s.pool.QueueDepth(),
		s.pool.JobsTimedOut(), s.pool.WorkerRespawns(), bstate, trips)
}
