package phiserve

import "sync"

// RetryBudget is a server-wide token bucket bounding how much extra work
// fault recovery may generate. Every successful completion deposits a
// fraction of a token; every vector retry pass and every stall-timeout
// re-dispatch must withdraw one token per lane first. Under healthy load
// the budget is a no-op — deposits outpace the rare withdrawal — but in an
// overload with a sick card the retry traffic is capped at Ratio times the
// goodput, so recovery attempts cannot amplify the overload into collapse
// (the retry-storm metastability).
//
// One budget is meant to be shared: the fleet hands the same *RetryBudget
// to every card (Config.RetryBudget), so the cap is global across the
// steal/redispatch paths too. A nil *RetryBudget grants everything, which
// keeps the zero-value Resilience policy unchanged.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
	denied int64
}

// NewRetryBudget builds a budget earning `ratio` tokens per successful
// operation (<=0 defaults to 0.1: retries capped at 10% of goodput) with
// at most `burst` banked tokens (<1 defaults to 2*BatchSize). The bucket
// starts full so a cold server can absorb an immediate fault burst.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst < 1 {
		burst = 2 * BatchSize
	}
	return &RetryBudget{tokens: float64(burst), burst: float64(burst), ratio: ratio}
}

// Deposit credits n successful operations. Nil-safe.
func (b *RetryBudget) Deposit(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += float64(n) * b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Allow withdraws n tokens if the full amount is available and reports
// whether it did; a denied withdrawal takes nothing (all-or-nothing, so a
// half-funded batch retry cannot strand its other lanes). A nil budget
// allows everything.
func (b *RetryBudget) Allow(n int) bool {
	if b == nil {
		return true
	}
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < float64(n) {
		b.denied += int64(n)
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Refund returns n whole tokens withdrawn by Allow when the funded work
// never ran (e.g. the dispatch queue refused the re-submit). Nil-safe.
func (b *RetryBudget) Refund(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Tokens returns the current balance (for the telemetry gauge).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Denied returns the lifetime count of lane-retries refused. Nil-safe.
func (b *RetryBudget) Denied() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
