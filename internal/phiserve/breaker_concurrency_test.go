package phiserve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phiopenssl/internal/faultsim"
)

// TestBreakerSingleProbeUnderConcurrency: when the cooldown elapses and
// many workers ask at once, exactly one is admitted as the half-open
// probe; everyone else is turned away until the probe's outcome lands.
func TestBreakerSingleProbeUnderConcurrency(t *testing.T) {
	b, clk := testBreaker(8, 0.5, 2, time.Second)
	b.record(true, false)
	b.record(true, false) // trips
	clk.advance(time.Second)

	const callers = 64
	var oks, probes atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			ok, probe := b.allowVector()
			if ok {
				oks.Add(1)
			}
			if probe {
				probes.Add(1)
			}
			if probe && !ok {
				t.Error("probe admission without ok")
			}
		}()
	}
	start.Done()
	done.Wait()
	if oks.Load() != 1 || probes.Load() != 1 {
		t.Fatalf("concurrent askers got ok=%d probe=%d, want exactly one probe",
			oks.Load(), probes.Load())
	}
	// The probe's clean outcome closes the breaker for everyone.
	b.record(false, true)
	if !b.healthy() {
		t.Fatal("clean probe did not close the breaker")
	}
	if ok, probe := b.allowVector(); !ok || probe {
		t.Fatalf("closed breaker after recovery: ok=%v probe=%v", ok, probe)
	}
}

// TestHalfOpenProbeConcurrentSubmits drives the full server through a
// trip/half-open/recover cycle under concurrent submitters: a scripted
// burst of kernel failures opens the breaker, traffic keeps arriving
// while it is open and probing, and every request must resolve exactly
// once — served by the probe-recovered vector path or the scalar
// fallback, never lost, never double-answered.
func TestHalfOpenProbeConcurrentSubmits(t *testing.T) {
	const n = 160
	nc := 16
	cs, want, _ := perOpAnswers(t, testKey, nc, 900)

	script := []faultsim.PassOutcome{
		faultsim.PassKernelFail, faultsim.PassKernelFail,
		faultsim.PassKernelFail, faultsim.PassKernelFail,
	}
	s, err := New(Config{
		Workers:      2,
		FillDeadline: 2 * time.Millisecond,
		QueueDepth:   4,
		Resilience: Resilience{
			MaxRetries:        -1, // first failure degrades: trips fast
			BreakerWindow:     8,
			BreakerThreshold:  0.5,
			BreakerMinSamples: 2,
			BreakerCooldown:   5 * time.Millisecond,
			Seed:              11,
			Faults:            &faultsim.Config{Seed: 5, Script: script},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	// Concurrent submitters racing the breaker's state machine: some hit
	// the closed breaker, some the open window (scalar fallback), some the
	// half-open probe admission.
	var wg sync.WaitGroup
	var wrong, failed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				res := <-ch
				if res.Err != nil {
					failed.Add(1)
					continue
				}
				if !res.M.Equal(want[i%nc]) {
					wrong.Add(1)
				}
				// A second receive must never produce a value: the channel
				// got exactly one resolve.
				select {
				case extra, ok := <-ch:
					if ok {
						t.Errorf("request %d resolved twice: %+v", i, extra)
					}
				default:
				}
				time.Sleep(200 * time.Microsecond) // keep traffic flowing across the cooldown
			}
		}(g)
	}
	wg.Wait()

	// Keep trickling traffic until the probes burn through the scripted
	// failures and the breaker closes (each failed probe costs one cooldown,
	// so this takes a handful of milliseconds).
	extra := 0
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().BreakerState != "closed" && time.Now().Before(deadline) {
		ch, err := s.Submit(context.Background(), testKey, cs[extra%nc])
		if err != nil {
			t.Fatalf("recovery submit: %v", err)
		}
		if res := <-ch; res.Err == nil && !res.M.Equal(want[extra%nc]) {
			wrong.Add(1)
		}
		extra++
		time.Sleep(time.Millisecond)
	}
	s.Close()

	if wrong.Load() != 0 {
		t.Fatalf("%d corrupted plaintexts escaped", wrong.Load())
	}
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed; kernel failures must degrade, not fail", failed.Load())
	}
	st := s.Stats()
	total := int64(n + extra)
	if st.Submitted != total || st.Completed+st.Failed != total {
		t.Fatalf("resolution accounting off (want %d resolved): %+v", total, st)
	}
	if st.BreakerTrips == 0 {
		t.Fatalf("scripted kernel failures never tripped the breaker: %+v", st)
	}
	if st.FallbackOps == 0 {
		t.Fatalf("open breaker never sent traffic to the fallback: %+v", st)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("breaker did not recover after the script drained: %+v", st)
	}
	t.Logf("trips=%d fallback=%d batches=%d kernelFaults=%d",
		st.BreakerTrips, st.FallbackOps, st.Batches, st.KernelFaults)
}
