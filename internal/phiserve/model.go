package phiserve

// Virtual-time load model of the streaming batch scheduler.
//
// The live Server batches by host wall clock, which makes its
// latency/throughput behaviour non-deterministic and unsuitable for the
// reproducible experiment tables. The load model replays the same policy
// — open a batch on first arrival, dispatch on the sixteenth request or
// at the fill deadline — in simulated machine time with a seeded Poisson
// arrival process, and costs every kernel pass with real metered cycle
// counts supplied by the caller (one rsakit.PrivateOpBatchN measurement
// per fill count). Experiment A6 sweeps offered load against fill
// deadline with it; the model ignores the live server's bounded dispatch
// queue (arrivals queue without limit), so heavily overloaded points
// report unbounded latency growth rather than backpressure.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"phiopenssl/internal/knc"
)

// LoadModel fixes the machine, the worker count, and the measured cost of
// one kernel pass at every fill count.
type LoadModel struct {
	// Machine is the simulated card.
	Machine knc.Machine
	// Workers is the number of concurrent batch executors.
	Workers int
	// CostPerFill[f] is the simulated cycle cost of one kernel pass with
	// f live lanes (index 1..BatchSize; partial passes cost the same as
	// full ones, but measuring each fill keeps the model honest about
	// it).
	CostPerFill [BatchSize + 1]float64
}

// simBatch is one dispatched batch in the virtual-time models.
type simBatch struct {
	first, size int
	ready       float64 // earliest possible dispatch time
}

// poissonArrivals draws n Poisson arrival times at `offered` requests per
// simulated second.
func poissonArrivals(rng *rand.Rand, n int, offered float64) []float64 {
	arrivals := make([]float64, n)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() / offered
		arrivals[i] = t
	}
	return arrivals
}

// formBatches replays the scheduler's batching policy over an arrival
// trace: a batch opens at its first arrival and closes at the earlier of
// deadline expiry and the sixteenth request.
func formBatches(arrivals []float64, deadline time.Duration) []simBatch {
	n := len(arrivals)
	dl := deadline.Seconds()
	var batches []simBatch
	for i := 0; i < n; {
		closeAt := arrivals[i] + dl
		j := i + 1
		for j < n && j-i < BatchSize && arrivals[j] <= closeAt {
			j++
		}
		ready := closeAt
		if j-i == BatchSize {
			ready = arrivals[j-1]
		}
		if j == n && arrivals[n-1] < closeAt {
			// The trace ends inside the fill window; treat trace end as a
			// graceful Close and flush immediately (like Server.Close),
			// so the last batch's deadline wait cannot distort the
			// aggregate throughput of a finite trace.
			ready = arrivals[n-1]
		}
		batches = append(batches, simBatch{first: i, size: j - i, ready: ready})
		i = j
	}
	return batches
}

// LoadPoint is one cell of the load/deadline sweep.
type LoadPoint struct {
	// Offered is the arrival rate in requests per simulated second.
	Offered float64
	// FillDeadline is the scheduler deadline in simulated time.
	FillDeadline time.Duration
	// Requests is the number of simulated arrivals.
	Requests int
	// MeanFill is the mean live lanes per batch; FillHist[f] counts
	// batches with f live lanes.
	MeanFill float64
	FillHist [BatchSize + 1]int
	// CyclesPerOp is the amortized simulated cost per request.
	CyclesPerOp float64
	// Throughput is achieved requests per simulated second (arrival of
	// the first request to completion of the last).
	Throughput float64
	// MeanLatency/P50/P99 are request latencies in simulated time:
	// arrival to batch completion, so fill waiting, queueing and the
	// kernel pass are all included.
	MeanLatency, P50Latency, P99Latency time.Duration
	// Utilization is the fraction of worker-time spent executing passes.
	Utilization float64
}

// Simulate runs n Poisson arrivals at `offered` requests/second through
// the batching policy with the given fill deadline and returns the
// resulting operating point. The rng makes runs reproducible.
func (m LoadModel) Simulate(rng *rand.Rand, n int, offered float64, deadline time.Duration) (LoadPoint, error) {
	if n < 1 || offered <= 0 {
		return LoadPoint{}, fmt.Errorf("phiserve: need n >= 1 arrivals at positive load")
	}
	workers := m.Workers
	if workers < 1 {
		workers = 1
	}
	for f := 1; f <= BatchSize; f++ {
		if m.CostPerFill[f] <= 0 {
			return LoadPoint{}, fmt.Errorf("phiserve: CostPerFill[%d] not measured", f)
		}
	}
	arrivals := poissonArrivals(rng, n, offered)
	batches := formBatches(arrivals, deadline)
	pt := LoadPoint{Offered: offered, FillDeadline: deadline, Requests: n}

	// FIFO service on `workers` executors; one pass occupies one executor
	// for the pass's simulated latency at this worker count.
	free := make([]float64, workers)
	latencies := make([]float64, 0, n)
	var busy, lastDone, cycles float64
	for _, b := range batches {
		w := 0
		for k := 1; k < workers; k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		start := b.ready
		if free[w] > start {
			start = free[w]
		}
		dur := m.Machine.Latency(workers, m.CostPerFill[b.size])
		done := start + dur
		free[w] = done
		busy += dur
		cycles += m.CostPerFill[b.size]
		if done > lastDone {
			lastDone = done
		}
		pt.FillHist[b.size]++
		for r := b.first; r < b.first+b.size; r++ {
			latencies = append(latencies, done-arrivals[r])
		}
	}

	pt.MeanFill = float64(n) / float64(len(batches))
	pt.CyclesPerOp = cycles / float64(n)
	span := lastDone - arrivals[0]
	if span > 0 {
		pt.Throughput = float64(n) / span
		pt.Utilization = busy / (span * float64(workers))
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	secs := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	pt.MeanLatency = secs(sum / float64(n))
	pt.P50Latency = secs(latencies[(50*n+99)/100-1])
	pt.P99Latency = secs(latencies[(99*n+99)/100-1])
	return pt, nil
}
