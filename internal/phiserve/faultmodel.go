package phiserve

// Virtual-time fault model of the resilient scheduler.
//
// FaultModel extends the A6 load model with the failure machinery of the
// live server: per-lane per-pass fault probability, bounded vector
// retries, degradation to the scalar non-CRT fallback, and the circuit
// breaker (driven by the simulated clock, so runs replay exactly).
// Experiment A7 sweeps the lane fault rate against goodput, latency and
// the fallback fraction with it.
//
// Divergences from the live Server, chosen to keep the model
// deterministic: retry passes run back-to-back on the batch's executor
// (no re-queueing, no backoff — backoff is host-time hygiene, invisible
// in simulated time), and the breaker is consulted at execution rather
// than admission, so while it is open whole batches degrade instead of
// being split into scalar singletons.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// FaultModel fixes the machine, the measured pass costs, the fault rate
// and the resilience policy for a virtual-time sweep.
type FaultModel struct {
	LoadModel
	// LaneFaultRate is the probability that one live lane of one kernel
	// pass is corrupted (and caught by the re-encryption check).
	LaneFaultRate float64
	// MaxRetries is the vector retry budget per lane before it degrades
	// to the scalar fallback (same meaning as Resilience.MaxRetries;
	// here 0 really is 0).
	MaxRetries int
	// ScalarCost is the measured simulated cycle cost of one scalar
	// non-CRT verified private op — the fallback path's price.
	ScalarCost float64
	// Breaker parameters (same semantics as Resilience; cooldown elapses
	// in simulated time).
	BreakerWindow     int
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration
}

// FaultPoint is one cell of the fault-rate sweep.
type FaultPoint struct {
	LoadPoint
	// LaneFaultRate echoes the model's per-lane per-pass fault rate.
	LaneFaultRate float64
	// FaultedLanes counts lane-passes that failed verification.
	FaultedLanes int64
	// RetryPasses counts extra kernel passes spent re-running faulted
	// lanes.
	RetryPasses int64
	// FallbackOps counts requests served by the scalar path;
	// FallbackFraction is their share of all requests.
	FallbackOps      int64
	FallbackFraction float64
	// BreakerTrips counts closed->open transitions (failed probes
	// included).
	BreakerTrips int64
	// MeanAttempts is the mean number of failed vector passes survived
	// per request.
	MeanAttempts float64
}

// Simulate runs n Poisson arrivals at `offered` requests/second through
// the batching policy and the fault/retry/fallback pipeline. The rng
// drives arrivals and lane faults; identical inputs replay identically.
func (m FaultModel) Simulate(rng *rand.Rand, n int, offered float64, deadline time.Duration) (FaultPoint, error) {
	if n < 1 || offered <= 0 {
		return FaultPoint{}, fmt.Errorf("phiserve: need n >= 1 arrivals at positive load")
	}
	if m.LaneFaultRate < 0 || m.LaneFaultRate > 1 {
		return FaultPoint{}, fmt.Errorf("phiserve: lane fault rate %g out of [0,1]", m.LaneFaultRate)
	}
	if m.ScalarCost <= 0 {
		return FaultPoint{}, fmt.Errorf("phiserve: ScalarCost not measured")
	}
	workers := m.Workers
	if workers < 1 {
		workers = 1
	}
	for f := 1; f <= BatchSize; f++ {
		if m.CostPerFill[f] <= 0 {
			return FaultPoint{}, fmt.Errorf("phiserve: CostPerFill[%d] not measured", f)
		}
	}

	arrivals := poissonArrivals(rng, n, offered)
	batches := formBatches(arrivals, deadline)
	pt := FaultPoint{
		LoadPoint:     LoadPoint{Offered: offered, FillDeadline: deadline, Requests: n},
		LaneFaultRate: m.LaneFaultRate,
	}

	// Zero breaker fields take the Resilience defaults (MaxRetries stays
	// literal: a model sweep may genuinely want zero retries).
	bw, bt, bm, bc := m.BreakerWindow, m.BreakerThreshold, m.BreakerMinSamples, m.BreakerCooldown
	if bw < 1 {
		bw = 32
	}
	if bt <= 0 {
		bt = 0.5
	}
	if bm < 1 {
		bm = 8
	}
	if bc <= 0 {
		bc = 100 * time.Millisecond
	}

	// The live breaker, driven by the simulated clock: the model is
	// single-threaded, so a shared virtual-now variable is race-free.
	vnow := 0.0
	brk := newBreaker(bw, bt, bm, bc)
	epoch := time.Unix(0, 0)
	brk.now = func() time.Time {
		return epoch.Add(time.Duration(vnow * float64(time.Second)))
	}
	scalarLat := m.Machine.Latency(workers, m.ScalarCost)

	free := make([]float64, workers)
	latencies := make([]float64, 0, n)
	var busy, lastDone, cycles, attemptsSum float64
	for _, b := range batches {
		w := 0
		for k := 1; k < workers; k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		start := b.ready
		if free[w] > start {
			start = free[w]
		}
		vnow = start
		t := start
		// resolve attributes completion times to lanes back-to-front:
		// when a pass faults some of its lanes, the model keeps the last
		// `faults` arrivals pending — which lanes fault is symmetric, and
		// a fixed rule keeps the replay deterministic.
		unresolved := b.size
		resolve := func(k int, at, attempts float64) {
			for i := 0; i < k; i++ {
				unresolved--
				latencies = append(latencies, at-arrivals[b.first+unresolved])
			}
			attemptsSum += attempts * float64(k)
		}
		serveScalar := func(k int, attempts float64) {
			for i := 0; i < k; i++ {
				t += scalarLat
				resolve(1, t, attempts)
			}
			pt.FallbackOps += int64(k)
			cycles += float64(k) * m.ScalarCost
		}

		allow, probe := brk.allowVector()
		if !allow {
			serveScalar(b.size, 0)
		} else {
			pending := b.size
			attempt := 0
			for {
				faults := 0
				for l := 0; l < pending; l++ {
					if rng.Float64() < m.LaneFaultRate {
						faults++
					}
				}
				t += m.Machine.Latency(workers, m.CostPerFill[pending])
				vnow = t
				cycles += m.CostPerFill[pending]
				pt.FillHist[pending]++
				if attempt > 0 {
					pt.RetryPasses++
				}
				brk.record(faults > 0, probe)
				probe = false
				resolve(pending-faults, t, float64(attempt))
				pt.FaultedLanes += int64(faults)
				if faults == 0 {
					break
				}
				attempt++
				if attempt > m.MaxRetries || !brk.healthy() {
					serveScalar(faults, float64(attempt))
					break
				}
				pending = faults
			}
		}
		free[w] = t
		busy += t - start
		if t > lastDone {
			lastDone = t
		}
	}

	totalPasses := 0
	for f := 1; f <= BatchSize; f++ {
		totalPasses += pt.FillHist[f]
	}
	if totalPasses > 0 {
		// MeanFill counts first-attempt fills only when nothing retries;
		// with retries in the histogram it is the mean live lanes per
		// executed pass — the honest lane-utilization figure.
		pt.MeanFill = float64(n) / float64(len(batches))
	}
	pt.CyclesPerOp = cycles / float64(n)
	pt.FallbackFraction = float64(pt.FallbackOps) / float64(n)
	pt.MeanAttempts = attemptsSum / float64(n)
	_, pt.BreakerTrips = brk.snapshot()
	span := lastDone - arrivals[0]
	if span > 0 {
		pt.Throughput = float64(n) / span
		pt.Utilization = busy / (span * float64(workers))
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	secs := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	pt.MeanLatency = secs(sum / float64(n))
	pt.P50Latency = secs(latencies[(50*n+99)/100-1])
	pt.P99Latency = secs(latencies[(99*n+99)/100-1])
	return pt, nil
}
