package phiserve

import (
	"time"

	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/telemetry"
)

// This file is the work-stealing seam between a single-card Server and a
// multi-card router (internal/phifleet). A server never knows its
// siblings: at the three moments it holds work it would rather not serve
// locally it calls Config.Redispatch with the operations wrapped as
// StolenOp values, and the hook moves however many it wants to another
// server via Adopt. The moved requests are the *same* request objects —
// the done CAS in finish keeps resolution exactly-once no matter which
// card answers — so nothing is re-counted as submitted and the response
// channel the caller holds keeps working.

// StealReason says why a server is offering work to the redispatch hook.
type StealReason int

const (
	// StealPartialDeadline: a fill deadline fired on a partial batch.
	// Executing it here costs a full kernel pass for few lanes; a sibling
	// may have open lanes of the same key, or simply be less loaded.
	StealPartialDeadline StealReason = iota
	// StealFaultRetry: these lanes failed verification and await a retry
	// pass on this (evidently faulty) card; a sibling's hardware is an
	// independent fault domain.
	StealFaultRetry
	// StealDegraded: this card's breaker is open. A healthy sibling can
	// serve the request on the vector path; only when the whole fleet is
	// degraded should it fall to scalar.
	StealDegraded
)

// String names the reason for traces and metric labels.
func (r StealReason) String() string {
	switch r {
	case StealPartialDeadline:
		return "partial-deadline"
	case StealFaultRetry:
		return "fault-retry"
	case StealDegraded:
		return "degraded"
	}
	return "unknown"
}

// StolenOp is one request offered to the redispatch hook. The wrapper
// exposes exactly what a router needs — the hop count for ping-pong
// bounds and liveness for skipping already-resolved work — without
// leaking the request's internals.
type StolenOp struct {
	q    *request
	from *Server
}

// Resolved reports whether the operation has already been answered (a
// racing path can resolve it between the offer and the adoption).
func (o StolenOp) Resolved() bool { return o.q.done.Load() }

// Hops is how many times this operation has been adopted by another
// server; routers should stop moving an op after a few hops.
func (o StolenOp) Hops() int { return int(o.q.hops.Load()) }

// RedispatchFunc is the router's side of the seam. It receives the
// workload, the offered operations (front of the donor's batch) and the
// reason, and returns how many operations — counted from the front — it
// moved to another server via Adopt. The donor keeps the rest. The hook
// runs on the donor's scheduler or worker goroutine, so it must not block
// on the donor (Adopt on a sibling is non-blocking and safe).
type RedispatchFunc func(w phiwork.Workload, ops []StolenOp, reason StealReason) int

// offerSteal runs the redispatch hook over reqs and returns how many
// requests, from the front, the hook took; the caller serves the
// remainder locally. With no hook configured it returns 0.
func (s *Server) offerSteal(w phiwork.Workload, reqs []*request, reason StealReason) int {
	if s.cfg.Redispatch == nil || len(reqs) == 0 {
		return 0
	}
	ops := make([]StolenOp, len(reqs))
	for i, q := range reqs {
		ops[i] = StolenOp{q: q, from: s}
	}
	taken := s.cfg.Redispatch(w, ops, reason)
	if taken < 0 {
		taken = 0
	}
	if taken > len(reqs) {
		taken = len(reqs)
	}
	if taken > 0 {
		s.stats.lanesStolen.Add(int64(taken))
		for _, q := range reqs[:taken] {
			q.journey.Event("steal", s.cfg.Card, reason.String())
		}
		s.tracer.Instant(s.ctl(), "steal", telemetry.Args{
			"lanes": taken, "reason": reason.String(), "key": s.workTag(w)})
	}
	return taken
}

// Adopt takes ownership of operations stolen from a sibling server,
// pushing them into this server's intake so they aggregate into batches
// like native traffic. It is non-blocking: the return value is how many
// ops were accepted (counted from the front; already-resolved ops count
// as accepted and are dropped). The remainder stays with the donor. An
// op adopted here resolves on this card — completed/failed accounting
// lands on the adopter, submitted stays with the donor, so fleet-wide
// sums still balance.
func (s *Server) Adopt(ops []StolenOp) int {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return 0
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	defer s.inFlight.Done()
	select {
	case <-s.ctx.Done():
		return 0
	default:
	}
	n := 0
	now := time.Now()
	for _, o := range ops {
		if o.q.done.Load() {
			n++ // nothing left to move; the donor must not serve it either
			continue
		}
		// Judge the op before paying to move it: an expired or abandoned
		// lane resolves here and counts as taken, so neither card runs it.
		if o.q.ctxDone() {
			o.q.journey.Event("checkpoint", s.cfg.Card, "adopt")
			if s.finish(o.q, Result{Err: ErrCanceled}) {
				s.stats.canceledLanes.Inc()
			}
			n++
			continue
		}
		if o.q.expiredAt(now) {
			o.q.journey.Event("checkpoint", s.cfg.Card, "adopt")
			if s.finish(o.q, Result{Err: ErrDeadlineExceeded}) {
				s.stats.expiredLanes.Inc()
			}
			n++
			continue
		}
		o.q.hops.Add(1)
		// Route by class, like a native submission: a light op adopted
		// onto the heavy intake would defeat the fast lane it was kept
		// out of the heavy queue for.
		intake := s.intake
		if o.q.work.Class() == phiwork.ClassLight {
			intake = s.intakeLight
		}
		select {
		case intake <- o.q:
			o.q.journey.Event("adopt", s.cfg.Card, "")
			s.stats.lanesAdopted.Inc()
			n++
		default:
			// Intake full — this card is not as idle as the router
			// thought. Give the op back rather than block the donor.
			o.q.hops.Add(-1)
			return n
		}
	}
	return n
}

// Load is a cheap congestion signal for routers: requests buffered in
// open batches plus a lane-count upper bound for the batches waiting in
// the dispatch queue and the scheduler's overflow list.
func (s *Server) Load() int {
	queued := s.pool.QueueDepth() + int(s.stats.overflowDepth.Value())
	return int(s.stats.pendingLanes.Value()) + queued*BatchSize
}

// Degraded reports whether the circuit breaker currently bypasses the
// vector path (open, or half-open with the probe already out). Routers
// use it to route around a sick card.
func (s *Server) Degraded() bool { return s.breaker.degraded() }
