package phiserve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the scheduler's aggregate behaviour.
type Stats struct {
	// Submitted / Completed / Failed count requests accepted by Submit,
	// resolved with a plaintext, and resolved with an error
	// (cancellation included).
	Submitted, Completed, Failed int64
	// Batches is the number of kernel passes executed.
	Batches int64
	// DeadlineFires counts batches dispatched by the fill deadline rather
	// than by filling all lanes.
	DeadlineFires int64
	// FillHist[f] is the number of executed batches with f live lanes
	// (index 1..BatchSize; index 0 is unused).
	FillHist [BatchSize + 1]int64
	// MeanFill is the mean number of live lanes per executed batch.
	MeanFill float64
	// PendingLanes is the number of requests currently buffered in open
	// (not yet dispatched) batches.
	PendingLanes int
	// QueueDepth is the number of batches currently waiting in the
	// dispatch queue.
	QueueDepth int
	// TotalSimCycles is the sum of simulated cycles across kernel passes.
	TotalSimCycles float64
	// CyclesPerOp is TotalSimCycles / Completed: the amortized simulated
	// cost of one request, the figure to compare against the per-op
	// engine (ablation A4).
	CyclesPerOp float64
	// SimThroughput is ops/second on the simulated machine at the
	// configured worker count, per the KNC issue-efficiency model.
	SimThroughput float64
	// MeanSimLatency is the mean per-request service latency in seconds
	// on the simulated machine (one kernel pass; queueing excluded).
	MeanSimLatency float64
}

// String renders a one-line summary.
func (st Stats) String() string {
	var fills []string
	for f := 1; f <= BatchSize; f++ {
		if st.FillHist[f] > 0 {
			fills = append(fills, fmt.Sprintf("%d:%d", f, st.FillHist[f]))
		}
	}
	return fmt.Sprintf(
		"submitted=%d completed=%d failed=%d batches=%d meanFill=%.1f cycles/op=%.0f simThroughput=%.0f fills[%s]",
		st.Submitted, st.Completed, st.Failed, st.Batches, st.MeanFill,
		st.CyclesPerOp, st.SimThroughput, strings.Join(fills, " "))
}

// statsAcc is the internal accumulator. Counters touched on the Submit
// path are atomics; per-batch aggregates share one mutex taken once per
// kernel pass.
type statsAcc struct {
	submitted     atomic.Int64
	failed        atomic.Int64
	pendingLanes  atomic.Int64
	deadlineFires atomic.Int64

	mu        sync.Mutex
	completed int64
	batches   int64
	fillHist  [BatchSize + 1]int64
	cycles    float64
	latencySum float64 // sum over requests of their batch's sim latency
}

func (a *statsAcc) recordBatch(fill int, cycles, simLat float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches++
	a.fillHist[fill]++
	a.completed += int64(fill)
	a.cycles += cycles
	a.latencySum += simLat * float64(fill)
}

func (a *statsAcc) snapshot(cfg Config, queueDepth int) Stats {
	a.mu.Lock()
	st := Stats{
		Submitted:      a.submitted.Load(),
		Completed:      a.completed,
		Failed:         a.failed.Load(),
		Batches:        a.batches,
		DeadlineFires:  a.deadlineFires.Load(),
		FillHist:       a.fillHist,
		PendingLanes:   int(a.pendingLanes.Load()),
		QueueDepth:     queueDepth,
		TotalSimCycles: a.cycles,
	}
	latencySum := a.latencySum
	a.mu.Unlock()

	if st.Batches > 0 {
		st.MeanFill = float64(st.Completed) / float64(st.Batches)
	}
	if st.Completed > 0 {
		st.CyclesPerOp = st.TotalSimCycles / float64(st.Completed)
		st.SimThroughput = cfg.Machine.Throughput(cfg.Workers, st.CyclesPerOp)
		st.MeanSimLatency = latencySum / float64(st.Completed)
	}
	return st
}
