package phiserve

import (
	"fmt"
	"sort"
	"strings"

	"phiopenssl/internal/knc"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/telemetry"
	"phiopenssl/internal/vbatch"
	"phiopenssl/internal/vpu"
)

// Stats is a snapshot of the scheduler's aggregate behaviour. It is a
// thin view over the server's telemetry registry: every field is read
// from the same counters the /metrics endpoint exports, so the two
// surfaces cannot drift apart.
type Stats struct {
	// Submitted / Completed / Failed count requests accepted by Submit,
	// resolved with a plaintext, and resolved with an error
	// (cancellation included). Completed includes fallback-served ops.
	Submitted, Completed, Failed int64
	// Batches is the number of kernel passes executed (retry passes
	// included; scalar fallback ops are not batches).
	Batches int64
	// DeadlineFires counts batches dispatched by the fill deadline rather
	// than by filling all lanes.
	DeadlineFires int64
	// FillHist[i] is the number of executed batches with i+1 live lanes
	// (a batch cannot execute with zero live lanes — dispatch requires at
	// least one request — so the histogram starts at one lane).
	FillHist [BatchSize]int64
	// MeanFill is the mean number of live lanes per executed batch; 0
	// when no batch has executed.
	MeanFill float64
	// PendingLanes is the number of requests currently buffered in open
	// (not yet dispatched) batches.
	PendingLanes int
	// QueueDepth is the number of batches currently waiting in the
	// dispatch queue.
	QueueDepth int
	// TotalSimCycles is the sum of simulated cycles across kernel passes.
	TotalSimCycles float64
	// CyclesPerOp is (TotalSimCycles + FallbackCycles) / Completed: the
	// amortized simulated cost of one request, including what faults made
	// the server spend on retries and the scalar path. 0 when Completed
	// is 0 (never NaN).
	CyclesPerOp float64
	// SimThroughput is ops/second on the simulated machine at the
	// configured worker count, per the KNC issue-efficiency model. 0 when
	// Completed is 0.
	SimThroughput float64
	// MeanSimLatency is the mean per-request service latency in seconds
	// on the simulated machine (one kernel pass; queueing excluded). 0
	// when Completed is 0 (never NaN).
	MeanSimLatency float64

	// FaultsDetected counts lanes whose pass failed the Bellcore
	// re-encryption check (each retry pass can add more).
	FaultsDetected int64
	// KernelFaults counts whole-pass transient kernel failures.
	KernelFaults int64
	// StalledPasses counts passes that wedged their worker (injected
	// stalls observed by the execution path).
	StalledPasses int64
	// TimedOutBatches counts batch executions abandoned by the
	// ExecTimeout monitor.
	TimedOutBatches int64
	// WorkerRespawns counts workers rebuilt after a stall.
	WorkerRespawns int64
	// Retries counts lane-operations re-executed on the vector path after
	// a detected fault.
	Retries int64
	// FallbackOps counts requests served by the scalar non-CRT path
	// (breaker open, retries exhausted, or drain of a stalled batch).
	FallbackOps int64
	// FallbackCycles is the simulated cycle sum spent on the scalar path.
	FallbackCycles float64
	// BreakerTrips counts closed->open (and failed-probe) transitions.
	BreakerTrips int64
	// BreakerState is "closed", "open" or "half-open" at snapshot time.
	BreakerState string

	// StolenLanes counts requests this server handed to the redispatch
	// hook (partial-deadline, fault-retry and degraded offers combined).
	StolenLanes int64
	// AdoptedLanes counts requests this server accepted from siblings
	// via Adopt.
	AdoptedLanes int64
	// OverflowBatches counts dispatches that found the queue full and
	// parked on the scheduler's overflow list (each counted once).
	OverflowBatches int64

	// ExpiredLanes counts requests resolved with ErrDeadlineExceeded —
	// rejected at the door or dropped at a pre-execution checkpoint (seal,
	// pool dequeue, pre-pass, retry, scalar drain) before burning cycles.
	ExpiredLanes int64
	// CanceledLanes counts requests dropped at a pre-execution checkpoint
	// because their context was canceled after intake (the request still
	// held a lane; it resolves with ErrCanceled without executing).
	CanceledLanes int64
	// OverflowDropped counts requests shed with ErrOverloaded because the
	// scheduler's overflow list hit Config.OverflowCap.
	OverflowDropped int64
	// RetryBudgetDenied counts lane-retries refused by the shared retry
	// budget (the lanes degraded straight to the scalar fallback).
	RetryBudgetDenied int64

	// Workloads breaks submissions, completions and kernel passes down by
	// workload kind; kinds with no traffic are omitted.
	Workloads map[phiwork.Kind]WorkloadStats
}

// WorkloadStats is one workload kind's slice of the aggregate counters.
type WorkloadStats struct {
	Submitted int64
	Completed int64
	Batches   int64
}

// String renders a one-line summary.
func (st Stats) String() string {
	var fills []string
	for i, n := range st.FillHist {
		if n > 0 {
			fills = append(fills, fmt.Sprintf("%d:%d", i+1, n))
		}
	}
	line := fmt.Sprintf(
		"submitted=%d completed=%d failed=%d batches=%d meanFill=%.1f cycles/op=%.0f simThroughput=%.0f fills[%s]",
		st.Submitted, st.Completed, st.Failed, st.Batches, st.MeanFill,
		st.CyclesPerOp, st.SimThroughput, strings.Join(fills, " "))
	if st.FaultsDetected+st.KernelFaults+st.StalledPasses+st.FallbackOps+st.BreakerTrips > 0 {
		line += fmt.Sprintf(
			" faults=%d kernelFaults=%d stalls=%d retries=%d fallback=%d trips=%d breaker=%s",
			st.FaultsDetected, st.KernelFaults, st.StalledPasses, st.Retries,
			st.FallbackOps, st.BreakerTrips, st.BreakerState)
	}
	if st.StolenLanes+st.AdoptedLanes+st.OverflowBatches > 0 {
		line += fmt.Sprintf(" stolen=%d adopted=%d overflow=%d",
			st.StolenLanes, st.AdoptedLanes, st.OverflowBatches)
	}
	if st.ExpiredLanes+st.CanceledLanes+st.OverflowDropped+st.RetryBudgetDenied > 0 {
		line += fmt.Sprintf(" expired=%d canceled=%d shed=%d budgetDenied=%d",
			st.ExpiredLanes, st.CanceledLanes, st.OverflowDropped, st.RetryBudgetDenied)
	}
	if len(st.Workloads) > 0 {
		kinds := make([]string, 0, len(st.Workloads))
		for k := range st.Workloads {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		var parts []string
		for _, k := range kinds {
			w := st.Workloads[phiwork.Kind(k)]
			parts = append(parts, fmt.Sprintf("%s:%d/%d", k, w.Completed, w.Submitted))
		}
		line += " workloads[" + strings.Join(parts, " ") + "]"
	}
	return line
}

// statsAcc is the server's bookkeeping, expressed entirely as telemetry
// metrics: there is no parallel counter set — Stats snapshots read the
// registry, and the registry is what /metrics exports. Hot-path updates
// are atomic (lock-free); the only mutex in sight is the registry's
// registration lock, taken once at construction.
type statsAcc struct {
	submitted, completed, failed *telemetry.Counter
	batches, deadlineFires       *telemetry.Counter
	faultsDetected, kernelFaults *telemetry.Counter
	stalledPasses, retries       *telemetry.Counter
	fallbackOps                  *telemetry.Counter
	pendingLanes                 *telemetry.Gauge
	fill                         *telemetry.Histogram
	simLatency                   *telemetry.Histogram // seconds, success only
	wallLatency                  *telemetry.Histogram // host seconds submit->resolve
	queueWait                    *telemetry.Histogram // host seconds dispatch->execute
	cycles, fallbackCycles       *telemetry.FloatCounter
	phaseCycles                  [vbatch.NumPhases]*telemetry.FloatCounter
	breakerGauge                 *telemetry.Gauge
	lanesStolen, lanesAdopted    *telemetry.Counter
	overflowed                   *telemetry.Counter
	overflowDepth                *telemetry.Gauge
	expiredLanes, canceledLanes  *telemetry.Counter
	overflowDropped              *telemetry.Counter
	budgetDenied                 *telemetry.Counter
	// byKind holds the per-workload counter families, pre-registered for
	// every canonical kind (so scrapes show zeros rather than absent
	// series) plus a catch-all "other" row for out-of-tree Workload
	// implementations.
	byKind map[phiwork.Kind]*workloadAcc
	other  *workloadAcc
}

// workloadAcc is one workload kind's labeled counter family.
type workloadAcc struct {
	submitted *telemetry.Counter
	completed *telemetry.Counter
	batches   *telemetry.Counter
}

// workload resolves a kind to its counter family, falling back to the
// catch-all row for kinds outside the canonical set.
func (a *statsAcc) workload(k phiwork.Kind) *workloadAcc {
	if wa, ok := a.byKind[k]; ok {
		return wa
	}
	return a.other
}

// newStatsAcc registers the scheduler's metric set on reg (never nil: a
// server without caller-provided telemetry gets a private registry).
// labels are stamped on every metric; they are what keeps multiple
// servers on one shared registry (the fleet's cards) from silently
// merging their counters.
func newStatsAcc(reg *telemetry.Registry, labels []string) *statsAcc {
	// L appends extra label pairs to the server's own, copying so the
	// shared backing array is never aliased across registrations.
	L := func(extra ...string) []string {
		out := make([]string, 0, len(labels)+len(extra))
		out = append(out, labels...)
		return append(out, extra...)
	}
	a := &statsAcc{
		submitted: reg.Counter("phiserve_requests_submitted_total",
			"requests accepted by Submit", labels...),
		completed: reg.Counter("phiserve_requests_completed_total",
			"requests resolved with a plaintext (fallback included)", labels...),
		failed: reg.Counter("phiserve_requests_failed_total",
			"requests resolved with an error (cancellation included)", labels...),
		batches: reg.Counter("phiserve_batches_total",
			"kernel passes executed (retry passes included)", labels...),
		deadlineFires: reg.Counter("phiserve_deadline_fires_total",
			"batches dispatched by the fill deadline", labels...),
		faultsDetected: reg.Counter("phiserve_faults_detected_total",
			"lanes that failed the Bellcore re-encryption check", labels...),
		kernelFaults: reg.Counter("phiserve_kernel_faults_total",
			"whole-pass transient kernel failures", labels...),
		stalledPasses: reg.Counter("phiserve_stalled_passes_total",
			"passes that wedged their worker", labels...),
		retries: reg.Counter("phiserve_retries_total",
			"lane-operations re-executed after a detected fault", labels...),
		fallbackOps: reg.Counter("phiserve_fallback_ops_total",
			"requests served by the scalar non-CRT path", labels...),
		pendingLanes: reg.Gauge("phiserve_pending_lanes",
			"requests buffered in open (not yet dispatched) batches", labels...),
		fill: reg.Histogram("phiserve_batch_fill_lanes",
			"live lanes per executed batch",
			telemetry.LinearBuckets(1, 1, BatchSize), labels...),
		simLatency: reg.Histogram("phiserve_sim_latency_seconds",
			"per-request service latency on the simulated machine",
			telemetry.Pow2Buckets(1e-6, 16), labels...),
		wallLatency: reg.Histogram("phiserve_request_wall_seconds",
			"host wall time from Submit to resolve",
			telemetry.Pow2Buckets(1e-6, 16), labels...),
		queueWait: reg.Histogram("phiserve_queue_wait_seconds",
			"host wall time a batch waited in the dispatch queue",
			telemetry.Pow2Buckets(1e-6, 16), labels...),
		cycles: reg.FloatCounter("phiserve_sim_cycles_total",
			"simulated cycles across kernel passes", labels...),
		fallbackCycles: reg.FloatCounter("phiserve_fallback_sim_cycles_total",
			"simulated cycles spent on the scalar fallback path", labels...),
		breakerGauge: reg.Gauge("phiserve_breaker_state",
			"circuit breaker state (0 closed, 1 open, 2 half-open)", labels...),
		lanesStolen: reg.Counter("phiserve_lanes_stolen_total",
			"requests handed to the redispatch hook (work stealing)", labels...),
		lanesAdopted: reg.Counter("phiserve_lanes_adopted_total",
			"requests adopted from sibling servers", labels...),
		overflowed: reg.Counter("phiserve_dispatch_overflow_total",
			"dispatches parked on the scheduler overflow list", labels...),
		overflowDepth: reg.Gauge("phiserve_dispatch_overflow_depth",
			"batches currently on the scheduler overflow list", labels...),
		expiredLanes: reg.Counter("phiserve_requests_expired_total",
			"requests resolved with ErrDeadlineExceeded before execution", labels...),
		canceledLanes: reg.Counter("phiserve_canceled_lanes_total",
			"lanes dropped pre-execution after their context was canceled", labels...),
		overflowDropped: reg.Counter("phiserve_overflow_dropped_total",
			"requests shed with ErrOverloaded at the overflow cap", labels...),
		budgetDenied: reg.Counter("phiserve_retry_budget_denied_total",
			"lane-retries refused by the shared retry budget", labels...),
	}
	for p := 0; p < vbatch.NumPhases; p++ {
		a.phaseCycles[p] = reg.FloatCounter("phiserve_phase_sim_cycles_total",
			"simulated kernel-pass cycles attributed per kernel phase; "+
				"the sum across phases equals phiserve_sim_cycles_total",
			L("phase", vbatch.PhaseName(vpu.Phase(p)))...)
	}
	// One labeled row per canonical workload kind, plus the catch-all.
	a.byKind = make(map[phiwork.Kind]*workloadAcc, len(phiwork.Kinds())+1)
	mkKind := func(label string) *workloadAcc {
		return &workloadAcc{
			submitted: reg.Counter("phiserve_workload_requests_total",
				"requests accepted by Submit, by workload kind",
				L("workload", label)...),
			completed: reg.Counter("phiserve_workload_completed_total",
				"requests resolved with a result, by workload kind",
				L("workload", label)...),
			batches: reg.Counter("phiserve_workload_batches_total",
				"kernel passes executed, by workload kind",
				L("workload", label)...),
		}
	}
	for _, k := range phiwork.Kinds() {
		a.byKind[k] = mkKind(string(k))
	}
	a.other = mkKind("other")
	// Scrapeable latency quantiles: estimated locally from the wall
	// histogram (Histogram.Quantile), so p50/p99 need no query engine.
	reg.GaugeFunc("phiserve_latency_p50_seconds",
		"median host wall latency, interpolated from phiserve_request_wall_seconds",
		func() float64 { return a.wallLatency.Quantile(0.5) }, labels...)
	reg.GaugeFunc("phiserve_latency_p99_seconds",
		"p99 host wall latency, interpolated from phiserve_request_wall_seconds",
		func() float64 { return a.wallLatency.Quantile(0.99) }, labels...)
	return a
}

// recordBatch accounts one executed kernel pass: fill live lanes packed,
// of which `served` resolved their request here (faulted lanes and lanes
// whose request a racing path already answered are excluded), with the
// pass's per-phase cycle attribution. Completion counting itself lives in
// Server.finish, the single resolution point.
func (a *statsAcc) recordBatch(kind phiwork.Kind, fill, served int, cycles, simLat float64, phases knc.PhaseCycles) {
	a.batches.Inc()
	a.workload(kind).batches.Inc()
	a.fill.Observe(float64(fill))
	a.cycles.Add(cycles)
	a.simLatency.ObserveN(simLat, int64(served))
	for p := 0; p < vbatch.NumPhases; p++ {
		if phases[p] != 0 {
			a.phaseCycles[p].Add(phases[p])
		}
	}
}

// recordFallback accounts one request served by the scalar path.
func (a *statsAcc) recordFallback(cycles, simLat float64) {
	a.fallbackOps.Inc()
	a.fallbackCycles.Add(cycles)
	a.simLatency.Observe(simLat)
}

// snapshot assembles a Stats view from the registry. Individual reads are
// atomic; after a quiescent point (Close, or a drained pipeline) the
// snapshot is exact.
func (a *statsAcc) snapshot(cfg Config, queueDepth int, timedOut, respawns int64, bstate breakerState, trips int64) Stats {
	st := Stats{
		Submitted:         a.submitted.Value(),
		Completed:         a.completed.Value(),
		Failed:            a.failed.Value(),
		Batches:           a.batches.Value(),
		DeadlineFires:     a.deadlineFires.Value(),
		PendingLanes:      int(a.pendingLanes.Value()),
		QueueDepth:        queueDepth,
		TotalSimCycles:    a.cycles.Value(),
		FaultsDetected:    a.faultsDetected.Value(),
		KernelFaults:      a.kernelFaults.Value(),
		StalledPasses:     a.stalledPasses.Value(),
		TimedOutBatches:   timedOut,
		WorkerRespawns:    respawns,
		Retries:           a.retries.Value(),
		FallbackOps:       a.fallbackOps.Value(),
		FallbackCycles:    a.fallbackCycles.Value(),
		BreakerTrips:      trips,
		BreakerState:      bstate.String(),
		StolenLanes:       a.lanesStolen.Value(),
		AdoptedLanes:      a.lanesAdopted.Value(),
		OverflowBatches:   a.overflowed.Value(),
		ExpiredLanes:      a.expiredLanes.Value(),
		CanceledLanes:     a.canceledLanes.Value(),
		OverflowDropped:   a.overflowDropped.Value(),
		RetryBudgetDenied: a.budgetDenied.Value(),
	}
	// The fill histogram's buckets are exactly the lane counts 1..16, so
	// the view reconstructs FillHist losslessly (bucket i holds batches
	// with i+1 live lanes).
	for f, n := range a.fill.BucketCounts() {
		if f < BatchSize {
			st.FillHist[f] = n
		}
	}
	if st.Batches > 0 {
		st.MeanFill = a.fill.Sum() / float64(st.Batches)
	}
	// Guard the per-op ratios: with nothing completed they report 0, not
	// NaN/Inf (a snapshot taken before the first resolve, or a run where
	// every request was canceled).
	if st.Completed > 0 {
		st.CyclesPerOp = (st.TotalSimCycles + st.FallbackCycles) / float64(st.Completed)
		st.SimThroughput = cfg.Machine.Throughput(cfg.Workers, st.CyclesPerOp)
		st.MeanSimLatency = a.simLatency.Sum() / float64(st.Completed)
	}
	for k, wa := range a.byKind {
		ws := WorkloadStats{
			Submitted: wa.submitted.Value(),
			Completed: wa.completed.Value(),
			Batches:   wa.batches.Value(),
		}
		if ws.Submitted+ws.Completed+ws.Batches == 0 {
			continue
		}
		if st.Workloads == nil {
			st.Workloads = make(map[phiwork.Kind]WorkloadStats)
		}
		st.Workloads[k] = ws
	}
	return st
}
