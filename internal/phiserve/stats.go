package phiserve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the scheduler's aggregate behaviour.
type Stats struct {
	// Submitted / Completed / Failed count requests accepted by Submit,
	// resolved with a plaintext, and resolved with an error
	// (cancellation included). Completed includes fallback-served ops.
	Submitted, Completed, Failed int64
	// Batches is the number of kernel passes executed (retry passes
	// included; scalar fallback ops are not batches).
	Batches int64
	// DeadlineFires counts batches dispatched by the fill deadline rather
	// than by filling all lanes.
	DeadlineFires int64
	// FillHist[f] is the number of executed batches with f live lanes
	// (index 1..BatchSize; index 0 is unused).
	FillHist [BatchSize + 1]int64
	// MeanFill is the mean number of live lanes per executed batch.
	MeanFill float64
	// PendingLanes is the number of requests currently buffered in open
	// (not yet dispatched) batches.
	PendingLanes int
	// QueueDepth is the number of batches currently waiting in the
	// dispatch queue.
	QueueDepth int
	// TotalSimCycles is the sum of simulated cycles across kernel passes.
	TotalSimCycles float64
	// CyclesPerOp is (TotalSimCycles + FallbackCycles) / Completed: the
	// amortized simulated cost of one request, including what faults made
	// the server spend on retries and the scalar path.
	CyclesPerOp float64
	// SimThroughput is ops/second on the simulated machine at the
	// configured worker count, per the KNC issue-efficiency model.
	SimThroughput float64
	// MeanSimLatency is the mean per-request service latency in seconds
	// on the simulated machine (one kernel pass; queueing excluded).
	MeanSimLatency float64

	// FaultsDetected counts lanes whose pass failed the Bellcore
	// re-encryption check (each retry pass can add more).
	FaultsDetected int64
	// KernelFaults counts whole-pass transient kernel failures.
	KernelFaults int64
	// StalledPasses counts passes that wedged their worker (injected
	// stalls observed by the execution path).
	StalledPasses int64
	// TimedOutBatches counts batch executions abandoned by the
	// ExecTimeout monitor.
	TimedOutBatches int64
	// WorkerRespawns counts workers rebuilt after a stall.
	WorkerRespawns int64
	// Retries counts lane-operations re-executed on the vector path after
	// a detected fault.
	Retries int64
	// FallbackOps counts requests served by the scalar non-CRT path
	// (breaker open, retries exhausted, or drain of a stalled batch).
	FallbackOps int64
	// FallbackCycles is the simulated cycle sum spent on the scalar path.
	FallbackCycles float64
	// BreakerTrips counts closed->open (and failed-probe) transitions.
	BreakerTrips int64
	// BreakerState is "closed", "open" or "half-open" at snapshot time.
	BreakerState string
}

// String renders a one-line summary.
func (st Stats) String() string {
	var fills []string
	for f := 1; f <= BatchSize; f++ {
		if st.FillHist[f] > 0 {
			fills = append(fills, fmt.Sprintf("%d:%d", f, st.FillHist[f]))
		}
	}
	line := fmt.Sprintf(
		"submitted=%d completed=%d failed=%d batches=%d meanFill=%.1f cycles/op=%.0f simThroughput=%.0f fills[%s]",
		st.Submitted, st.Completed, st.Failed, st.Batches, st.MeanFill,
		st.CyclesPerOp, st.SimThroughput, strings.Join(fills, " "))
	if st.FaultsDetected+st.KernelFaults+st.StalledPasses+st.FallbackOps+st.BreakerTrips > 0 {
		line += fmt.Sprintf(
			" faults=%d kernelFaults=%d stalls=%d retries=%d fallback=%d trips=%d breaker=%s",
			st.FaultsDetected, st.KernelFaults, st.StalledPasses, st.Retries,
			st.FallbackOps, st.BreakerTrips, st.BreakerState)
	}
	return line
}

// statsAcc is the internal accumulator. Counters touched on the Submit
// and fault paths are atomics; per-batch aggregates share one mutex taken
// once per kernel pass.
type statsAcc struct {
	submitted     atomic.Int64
	failed        atomic.Int64
	pendingLanes  atomic.Int64
	deadlineFires atomic.Int64

	faultsDetected atomic.Int64
	kernelFaults   atomic.Int64
	stalledPasses  atomic.Int64
	retries        atomic.Int64

	mu             sync.Mutex
	completed      int64
	batches        int64
	fillSum        int64
	fillHist       [BatchSize + 1]int64
	cycles         float64
	latencySum     float64 // sum over requests of their pass's sim latency
	fallbackOps    int64
	fallbackCycles float64
}

// recordBatch accounts one executed kernel pass: fill live lanes packed,
// of which `served` resolved their request here (faulted lanes and lanes
// whose request a racing path already answered are excluded).
func (a *statsAcc) recordBatch(fill, served int, cycles, simLat float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches++
	a.fillHist[fill]++
	a.fillSum += int64(fill)
	a.completed += int64(served)
	a.cycles += cycles
	a.latencySum += simLat * float64(served)
}

// recordFallback accounts one request served by the scalar path.
func (a *statsAcc) recordFallback(cycles, simLat float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completed++
	a.fallbackOps++
	a.fallbackCycles += cycles
	a.latencySum += simLat
}

func (a *statsAcc) snapshot(cfg Config, queueDepth int, timedOut, respawns int64, bstate breakerState, trips int64) Stats {
	a.mu.Lock()
	st := Stats{
		Submitted:       a.submitted.Load(),
		Completed:       a.completed,
		Failed:          a.failed.Load(),
		Batches:         a.batches,
		DeadlineFires:   a.deadlineFires.Load(),
		FillHist:        a.fillHist,
		PendingLanes:    int(a.pendingLanes.Load()),
		QueueDepth:      queueDepth,
		TotalSimCycles:  a.cycles,
		FaultsDetected:  a.faultsDetected.Load(),
		KernelFaults:    a.kernelFaults.Load(),
		StalledPasses:   a.stalledPasses.Load(),
		TimedOutBatches: timedOut,
		WorkerRespawns:  respawns,
		Retries:         a.retries.Load(),
		FallbackOps:     a.fallbackOps,
		FallbackCycles:  a.fallbackCycles,
		BreakerTrips:    trips,
		BreakerState:    bstate.String(),
	}
	fillSum := a.fillSum
	latencySum := a.latencySum
	a.mu.Unlock()

	if st.Batches > 0 {
		st.MeanFill = float64(fillSum) / float64(st.Batches)
	}
	if st.Completed > 0 {
		st.CyclesPerOp = (st.TotalSimCycles + st.FallbackCycles) / float64(st.Completed)
		st.SimThroughput = cfg.Machine.Throughput(cfg.Workers, st.CyclesPerOp)
		st.MeanSimLatency = latencySum / float64(st.Completed)
	}
	return st
}
