package phiserve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	// breakerClosed: vector path healthy, batches flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: the rolling fault rate crossed the threshold; every
	// submission is served by the scalar fallback until the cooldown
	// elapses.
	breakerOpen
	// breakerHalfOpen: cooldown elapsed; exactly one probe batch tests the
	// vector path. A clean probe closes the breaker, a faulty one reopens
	// it.
	breakerHalfOpen
)

// String implements fmt.Stringer for stats and logs.
func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker trips the vector path off when too many recent kernel passes
// were faulty. The unit of observation is one pass (one batch execution
// attempt): pass outcomes enter a rolling window, and when at least
// minSamples outcomes are present and the faulty fraction reaches
// threshold, the breaker opens. After cooldown it half-opens: the next
// batch to ask becomes the probe, and its outcome decides between closed
// (window reset) and another open period.
//
// breaker is concurrency-safe; workers record outcomes from their own
// goroutines. now is injectable so tests replay deterministic schedules.
type breaker struct {
	threshold  float64
	minSamples int
	cooldown   time.Duration
	now        func() time.Time
	// onTransition, when set, is invoked (under b.mu) on every state
	// change with the old and new state. The callback must not call back
	// into the breaker; the server uses it to update the breaker-state
	// gauge and drop an instant event into the trace.
	onTransition func(from, to breakerState)

	mu       sync.Mutex
	state    breakerState
	window   []bool // ring buffer of recent pass outcomes; true = faulty
	idx, n   int
	faults   int
	openedAt time.Time
	probing  bool // a half-open probe batch is in flight
	trips    int64
}

func newBreaker(window int, threshold float64, minSamples int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold:  threshold,
		minSamples: minSamples,
		cooldown:   cooldown,
		now:        time.Now,
		window:     make([]bool, window),
	}
}

// allowVector is asked by a worker about to execute a non-fallback batch:
// it reports whether the vector path may be used, and whether this batch
// is the half-open probe. Called at execution (not admission) time, so the
// verdict reflects the breaker's state after any queueing delay.
func (b *breaker) allowVector() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transitionLocked(breakerHalfOpen)
			b.probing = true
			return true, true
		}
		return false, false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true, true
		}
		return false, false
	}
}

// healthy reports whether the vector path is currently trusted (closed
// state). Retry loops consult it to stop hammering a sick device
// mid-batch.
func (b *breaker) healthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// degraded reports whether new submissions should bypass batching and go
// straight to the scalar fallback: the breaker is open inside its
// cooldown, or half-open with the probe already in flight. (Open past the
// cooldown admits batching — the next executed batch becomes the probe.)
func (b *breaker) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false
	case breakerOpen:
		return b.now().Sub(b.openedAt) < b.cooldown
	default:
		return b.probing
	}
}

// record feeds one pass outcome back. probe must be the flag allowVector
// returned for this pass.
func (b *breaker) record(faulty, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if faulty {
			b.transitionLocked(breakerOpen)
			b.openedAt = b.now()
			b.trips++
			return
		}
		// Clean probe: close and start from a fresh window, so the fault
		// burst that tripped the breaker cannot immediately re-trip it.
		// The probe's own outcome is not pushed — the new window starts
		// empty.
		b.transitionLocked(breakerClosed)
		b.resetWindowLocked()
		return
	}
	if b.state == breakerOpen {
		// Stragglers from before the trip; the open period already decided
		// the path, don't let them perturb the next window.
		return
	}
	b.pushLocked(faulty)
	if b.state == breakerClosed && b.n >= b.minSamples &&
		float64(b.faults) >= b.threshold*float64(b.n) {
		b.transitionLocked(breakerOpen)
		b.openedAt = b.now()
		b.trips++
		b.resetWindowLocked()
	}
}

// transitionLocked changes state and fires the observer hook. Callers hold
// b.mu.
func (b *breaker) transitionLocked(to breakerState) {
	from := b.state
	b.state = to
	if from != to && b.onTransition != nil {
		b.onTransition(from, to)
	}
}

func (b *breaker) pushLocked(faulty bool) {
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.faults--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = faulty
	if faulty {
		b.faults++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

func (b *breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.n, b.faults = 0, 0, 0
}

// snapshot returns the current state and lifetime trip count.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
