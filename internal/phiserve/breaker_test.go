package phiserve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's injectable now() deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(window int, threshold float64, minSamples int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(window, threshold, minSamples, cooldown)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerTripsOnFaultRate: the breaker stays closed below minSamples,
// then opens the moment the rolling faulty fraction reaches the threshold.
func TestBreakerTripsOnFaultRate(t *testing.T) {
	b, _ := testBreaker(8, 0.5, 4, time.Second)
	// Three faulty passes: under minSamples, still closed.
	for i := 0; i < 3; i++ {
		b.record(true, false)
		if !b.healthy() {
			t.Fatalf("tripped after %d samples, below minSamples", i+1)
		}
	}
	// Fourth sample (clean) brings n to minSamples with 3/4 faulty >= 0.5.
	b.record(false, false)
	if b.healthy() {
		t.Fatal("did not trip at 3/4 faulty with threshold 0.5")
	}
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("state %v trips %d after trip, want open/1", st, trips)
	}
	if ok, _ := b.allowVector(); ok {
		t.Fatal("open breaker allowed the vector path inside cooldown")
	}
	if !b.degraded() {
		t.Fatal("open breaker inside cooldown not degraded")
	}
}

// TestBreakerCleanPassesKeepItClosed: a healthy device never trips.
func TestBreakerCleanPassesKeepItClosed(t *testing.T) {
	b, _ := testBreaker(8, 0.5, 4, time.Second)
	for i := 0; i < 100; i++ {
		if ok, probe := b.allowVector(); !ok || probe {
			t.Fatalf("pass %d: closed breaker returned ok=%v probe=%v", i, ok, probe)
		}
		b.record(false, false)
	}
	if st, trips := b.snapshot(); st != breakerClosed || trips != 0 {
		t.Fatalf("state %v trips %d after clean run", st, trips)
	}
}

// TestBreakerHalfOpenProbeRecovers: after the cooldown exactly one probe
// is admitted; a clean probe closes the breaker with a fresh window.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := testBreaker(8, 0.5, 2, time.Second)
	b.record(true, false)
	b.record(true, false)
	if b.healthy() {
		t.Fatal("did not trip")
	}
	clk.advance(time.Second)
	if b.degraded() {
		t.Fatal("open breaker past cooldown must admit traffic toward a probe")
	}
	ok, probe := b.allowVector()
	if !ok || !probe {
		t.Fatalf("past cooldown: ok=%v probe=%v, want probe admission", ok, probe)
	}
	// While the probe is in flight, nothing else passes.
	if ok, _ := b.allowVector(); ok {
		t.Fatal("second batch admitted while the probe is in flight")
	}
	if !b.degraded() {
		t.Fatal("probing half-open breaker should route new traffic to fallback")
	}
	b.record(false, true) // clean probe
	if st, trips := b.snapshot(); st != breakerClosed || trips != 1 {
		t.Fatalf("clean probe left state %v trips %d", st, trips)
	}
	// The window was reset: the old fault burst must not count anymore.
	b.record(true, false)
	if !b.healthy() {
		t.Fatal("stale pre-trip faults survived the window reset")
	}
}

// TestBreakerFailedProbeReopens: a faulty probe restarts the cooldown and
// counts as another trip.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(8, 0.5, 2, time.Second)
	b.record(true, false)
	b.record(true, false)
	clk.advance(time.Second)
	if _, probe := b.allowVector(); !probe {
		t.Fatal("no probe admitted")
	}
	b.record(true, true) // probe faulted
	if st, trips := b.snapshot(); st != breakerOpen || trips != 2 {
		t.Fatalf("failed probe left state %v trips %d, want open/2", st, trips)
	}
	if ok, _ := b.allowVector(); ok {
		t.Fatal("vector path admitted right after a failed probe")
	}
	// Another full cooldown earns another probe.
	clk.advance(time.Second)
	if _, probe := b.allowVector(); !probe {
		t.Fatal("no probe after the second cooldown")
	}
	b.record(false, true)
	if !b.healthy() {
		t.Fatal("clean second probe did not close the breaker")
	}
}

// TestBreakerIgnoresStragglersWhileOpen: outcomes from passes that started
// before the trip must not perturb the open period or the next window.
func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	b, clk := testBreaker(8, 0.5, 2, time.Second)
	b.record(true, false)
	b.record(true, false) // trips
	for i := 0; i < 10; i++ {
		b.record(true, false) // stragglers
	}
	clk.advance(time.Second)
	if _, probe := b.allowVector(); !probe {
		t.Fatal("no probe after cooldown")
	}
	b.record(false, true)
	if st, trips := b.snapshot(); st != breakerClosed || trips != 1 {
		t.Fatalf("stragglers perturbed recovery: state %v trips %d", st, trips)
	}
}

// TestBreakerRollingWindowEvicts: old outcomes age out of the ring, so a
// long-past burst cannot combine with fresh noise to trip.
func TestBreakerRollingWindowEvicts(t *testing.T) {
	b, _ := testBreaker(4, 0.75, 4, time.Second)
	b.record(true, false)
	b.record(true, false)
	// Four clean passes push both faults out of the window of 4.
	for i := 0; i < 4; i++ {
		b.record(false, false)
	}
	b.record(true, false)
	b.record(true, false)
	// Window is now [clean clean faulty faulty] = 2/4 < 0.75.
	if !b.healthy() {
		t.Fatal("evicted outcomes still counted toward the trip")
	}
}
