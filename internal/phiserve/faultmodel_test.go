package phiserve

import (
	"math/rand"
	"testing"
	"time"
)

func testFaultModel(rate float64) FaultModel {
	return FaultModel{
		LoadModel:     testModel(),
		LaneFaultRate: rate,
		MaxRetries:    2,
		ScalarCost:    3e7, // scalar non-CRT op ~15x one 16-lane pass
	}
}

func TestFaultModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := testFaultModel(-0.1).Simulate(rng, 10, 100, time.Millisecond); err == nil {
		t.Fatal("negative fault rate accepted")
	}
	if _, err := testFaultModel(1.1).Simulate(rng, 10, 100, time.Millisecond); err == nil {
		t.Fatal("fault rate > 1 accepted")
	}
	bad := testFaultModel(0)
	bad.ScalarCost = 0
	if _, err := bad.Simulate(rng, 10, 100, time.Millisecond); err == nil {
		t.Fatal("unmeasured scalar cost accepted")
	}
}

// TestFaultModelZeroRateMatchesLoadModel: at fault rate zero the fault
// model must reproduce the plain load model exactly — same batches, same
// costs, same latencies.
func TestFaultModelZeroRateMatchesLoadModel(t *testing.T) {
	fm := testFaultModel(0)
	fp, err := fm.Simulate(rand.New(rand.NewSource(21)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := fm.LoadModel.Simulate(rand.New(rand.NewSource(21)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// busy-time sums accumulate in a different order, so Utilization may
	// differ in the last ulps; everything else must match exactly.
	if d := fp.Utilization - lp.Utilization; d > 1e-9 || d < -1e-9 {
		t.Fatalf("utilization diverged: %v vs %v", fp.Utilization, lp.Utilization)
	}
	fp.Utilization = lp.Utilization
	if fp.LoadPoint != lp {
		t.Fatalf("fault model at rate 0 diverged from load model:\n%+v\n%+v", fp.LoadPoint, lp)
	}
	if fp.FaultedLanes != 0 || fp.RetryPasses != 0 || fp.FallbackOps != 0 ||
		fp.BreakerTrips != 0 || fp.MeanAttempts != 0 {
		t.Fatalf("rate 0 produced fault activity: %+v", fp)
	}
}

func TestFaultModelDeterministic(t *testing.T) {
	fm := testFaultModel(1e-2)
	a, err := fm.Simulate(rand.New(rand.NewSource(33)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fm.Simulate(rand.New(rand.NewSource(33)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestFaultModelFaultsCostMore: a moderate fault rate must show up as
// detected lanes, retry passes and a higher amortized cost, while the
// breaker stays closed.
func TestFaultModelFaultsCostMore(t *testing.T) {
	clean, err := testFaultModel(0).Simulate(rand.New(rand.NewSource(5)), 3000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := testFaultModel(1e-2).Simulate(rand.New(rand.NewSource(5)), 3000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultedLanes == 0 || faulty.RetryPasses == 0 {
		t.Fatalf("rate 1e-2 over 3000 ops produced no fault activity: %+v", faulty)
	}
	if faulty.CyclesPerOp <= clean.CyclesPerOp {
		t.Fatalf("faults came for free: %.0f vs clean %.0f cycles/op",
			faulty.CyclesPerOp, clean.CyclesPerOp)
	}
	if faulty.BreakerTrips != 0 {
		t.Fatalf("breaker tripped at a 1e-2 lane rate (pass fault rate ~0.15): %+v", faulty)
	}
	if faulty.MeanAttempts <= 0 {
		t.Fatalf("retries happened but MeanAttempts = %v", faulty.MeanAttempts)
	}
}

// TestFaultModelHighRateTripsBreakerAndDegrades: near-certain pass faults
// must trip the breaker and push most traffic onto the scalar fallback —
// the graceful-degradation end of the A7 sweep.
func TestFaultModelHighRateTripsBreakerAndDegrades(t *testing.T) {
	pt, err := testFaultModel(0.5).Simulate(rand.New(rand.NewSource(9)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pt.BreakerTrips < 1 {
		t.Fatalf("breaker never tripped at lane rate 0.5: %+v", pt)
	}
	if pt.FallbackFraction < 0.5 {
		t.Fatalf("fallback fraction %.2f, want most traffic degraded", pt.FallbackFraction)
	}
	if pt.Throughput <= 0 || pt.MeanLatency <= 0 {
		t.Fatalf("degraded mode still must make progress: %+v", pt)
	}
	if pt.CyclesPerOp < testFaultModel(0).ScalarCost*pt.FallbackFraction {
		t.Fatalf("cycles/op %.0f implausibly low for %.0f%% scalar traffic",
			pt.CyclesPerOp, 100*pt.FallbackFraction)
	}
}
