package phiserve

import (
	"context"
	"os"
	"testing"
	"time"

	"phiopenssl/internal/faultsim"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/vpu"
)

// countingCorruptor counts injection points without corrupting anything —
// used to measure how many corruptible instructions one kernel pass
// executes, so per-pass fault rates convert exactly to per-instruction
// rates.
type countingCorruptor struct{ n int64 }

func (c *countingCorruptor) CorruptVec(*vpu.Vec) { c.n++ }

// instrPerVerifiedPass measures the corruptible-instruction count of one
// full verified batch pass (CRT kernel + re-encryption check) for key on
// the given backend. The count differs by orders of magnitude between
// backends (sim corrupts per vector instruction, direct per kernel phase
// boundary), so rate conversions must measure on the backend the server
// will actually run.
func instrPerVerifiedPass(t *testing.T, key *rsakit.PrivateKey, kind vpu.BackendKind) int64 {
	t.Helper()
	be := vpu.NewBackend(kind)
	ctr := &countingCorruptor{}
	be.AttachFaults(ctr)
	cs, _, _ := perOpAnswers(t, key, BatchSize, 900)
	if _, _, err := rsakit.PrivateOpBatchVerifiedN(be, key, cs); err != nil {
		t.Fatal(err)
	}
	return ctr.n
}

// TestInjectedBitFlipsNeverEscape: with random lane bit-flips injected
// into every worker's vector unit, every released plaintext must still be
// correct — faulted lanes are caught by the re-encryption check and healed
// by retry or fallback. The breaker is disabled here to exercise the
// retry path in isolation.
func TestInjectedBitFlipsNeverEscape(t *testing.T) {
	const n = 192
	nc := 32
	cs, want, _ := perOpAnswers(t, testKey, nc, 200)

	// Target ~3 expected lane flips per pass, converted to the
	// per-instruction rate of whichever backend the server resolves to
	// (direct exposes far fewer corruption points than sim, so a fixed
	// per-instruction rate would not port across backends).
	kind := Config{}.withDefaults().Backend
	instr := instrPerVerifiedPass(t, testKey, kind)
	rate := faultsim.PerInstrRate(0.2, uint64(instr))
	t.Logf("backend %s: %d corruptible instructions/pass, flip rate %.3g", kind, instr, rate)

	s, err := New(Config{
		Workers:      4,
		FillDeadline: 200 * time.Millisecond,
		Resilience: Resilience{
			Seed:             1,
			BreakerThreshold: 2, // never trips: isolate retry/degrade behaviour
			Faults: &faultsim.Config{
				Seed:         7,
				LaneFlipRate: rate,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	resps := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if !res.M.Equal(want[i%nc]) {
			t.Fatalf("request %d: CORRUPTED PLAINTEXT ESCAPED (attempts=%d fallback=%v)",
				i, res.Attempts, res.Fallback)
		}
	}
	s.Close()

	st := s.Stats()
	if st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats %+v after %d requests", st, n)
	}
	if st.FaultsDetected == 0 {
		t.Fatalf("flip rate %.3g injected no detected faults over %d batches — injector not wired?", rate, st.Batches)
	}
	if st.Retries == 0 && st.FallbackOps == 0 {
		t.Fatalf("faults detected (%d) but nothing retried or fell back: %+v", st.FaultsDetected, st)
	}
	t.Logf("faults=%d retries=%d fallback=%d batches=%d",
		st.FaultsDetected, st.Retries, st.FallbackOps, st.Batches)
}

// TestKernelFailScriptRetriesThenFallsBack: a scripted double kernel
// failure must burn the retry budget and degrade the whole batch to the
// scalar path, with correct answers and accurate counters.
func TestKernelFailScriptRetriesThenFallsBack(t *testing.T) {
	cs, want, _ := perOpAnswers(t, testKey, BatchSize, 201)
	s, err := New(Config{
		Workers:      1,
		FillDeadline: time.Second,
		Resilience: Resilience{
			MaxRetries:       1,
			BreakerThreshold: 2,
			Faults: &faultsim.Config{
				Seed:   3,
				Script: []faultsim.PassOutcome{faultsim.PassKernelFail, faultsim.PassKernelFail},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	resps := make([]<-chan Result, BatchSize)
	for i := range resps {
		ch, err := s.Submit(context.Background(), testKey, cs[i])
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(want[i]) {
			t.Fatalf("request %d: %+v", i, res)
		}
		if !res.Fallback {
			t.Fatalf("request %d served by the vector path despite a scripted double kernel failure", i)
		}
		if res.Attempts != 2 {
			t.Fatalf("request %d: attempts=%d, want 2 (two failed passes)", i, res.Attempts)
		}
	}
	s.Close()
	st := s.Stats()
	if st.KernelFaults != 2 {
		t.Fatalf("KernelFaults=%d, want 2", st.KernelFaults)
	}
	if st.Retries != BatchSize {
		t.Fatalf("Retries=%d, want %d (one vector retry of the full batch)", st.Retries, BatchSize)
	}
	if st.FallbackOps != BatchSize {
		t.Fatalf("FallbackOps=%d, want %d", st.FallbackOps, BatchSize)
	}
	if st.Completed != BatchSize || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBreakerTripsAndRecoversEndToEnd: scripted kernel failures trip the
// breaker; while it is open, traffic is served correctly by the scalar
// fallback; after the cooldown a probe batch closes it again. Fully
// deterministic: one worker, scripted outcomes, explicit cooldown waits.
func TestBreakerTripsAndRecoversEndToEnd(t *testing.T) {
	nc := 48
	cs, want, _ := perOpAnswers(t, testKey, nc, 202)
	// Generous cooldown: the mid-open assertions below must comfortably fit
	// inside it even on a slow -race run.
	const cooldown = 1500 * time.Millisecond
	s, err := New(Config{
		Workers:      1,
		FillDeadline: 5 * time.Millisecond,
		Resilience: Resilience{
			MaxRetries:        -1, // first fault degrades; keeps the script accounting simple
			BreakerWindow:     8,
			BreakerThreshold:  0.5,
			BreakerMinSamples: 2,
			BreakerCooldown:   cooldown,
			Faults: &faultsim.Config{
				Seed:   5,
				Script: []faultsim.PassOutcome{faultsim.PassKernelFail, faultsim.PassKernelFail},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	collect := func(lo, hi int) {
		t.Helper()
		resps := make([]<-chan Result, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			resps = append(resps, ch)
		}
		for j, ch := range resps {
			res := <-ch
			if res.Err != nil || !res.M.Equal(want[(lo+j)%nc]) {
				t.Fatalf("request %d: %+v", lo+j, res)
			}
		}
	}

	// Two batches, both scripted to kernel-fail: trips the breaker
	// (2 faulty passes >= threshold 0.5 with minSamples 2). Both are
	// healed by the scalar fallback.
	collect(0, BatchSize)
	collect(BatchSize, 2*BatchSize)
	st := s.Stats()
	if st.BreakerTrips < 1 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if st.FallbackOps < 2*BatchSize {
		t.Fatalf("FallbackOps=%d, want >= %d (both batches healed scalar)", st.FallbackOps, 2*BatchSize)
	}

	// While open (inside cooldown), traffic still flows — straight to the
	// fallback without consuming a pass.
	batchesBefore := st.Batches
	collect(2*BatchSize, 2*BatchSize+8)
	st = s.Stats()
	if st.Batches != batchesBefore {
		t.Fatalf("open breaker still executed %d vector batches", st.Batches-batchesBefore)
	}

	// After the cooldown the script is exhausted (clean passes): the next
	// batch probes the vector path and closes the breaker.
	time.Sleep(cooldown + 20*time.Millisecond)
	collect(2*BatchSize+8, 3*BatchSize+8)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = s.Stats()
		if st.BreakerState == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()

	st = s.Stats()
	if st.BreakerState != "closed" || st.BreakerTrips != 1 {
		t.Fatalf("final breaker state %s trips %d, want closed/1", st.BreakerState, st.BreakerTrips)
	}
	if st.Failed != 0 || st.Completed != 3*BatchSize+8 {
		t.Fatalf("stats %+v", st)
	}
	if st.Batches == batchesBefore {
		t.Fatal("vector path never probed after recovery")
	}
}

// TestStallRespawnsWorkerAndResolvesExactlyOnce: a scripted stall wedges
// the only worker; the ExecTimeout monitor must respawn it, the batch must
// be healed (here: straight to scalar, MaxRetries -1), and every request
// must resolve exactly once even though the zombie execution later wakes
// during Close and walks the same request list.
func TestStallRespawnsWorkerAndResolvesExactlyOnce(t *testing.T) {
	cs, want, _ := perOpAnswers(t, testKey, BatchSize, 203)
	s, err := New(Config{
		Workers:      1,
		FillDeadline: time.Second,
		Resilience: Resilience{
			MaxRetries:       -1,
			ExecTimeout:      150 * time.Millisecond,
			BreakerThreshold: 2,
			Faults: &faultsim.Config{
				Seed:   9,
				Script: []faultsim.PassOutcome{faultsim.PassStall},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	resps := make([]<-chan Result, BatchSize)
	for i := range resps {
		ch, err := s.Submit(context.Background(), testKey, cs[i])
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(want[i]) {
			t.Fatalf("request %d: %+v", i, res)
		}
		if !res.Fallback {
			t.Fatalf("request %d not served by fallback after its worker stalled", i)
		}
	}
	s.Close() // releases the parked zombie; it must not double-resolve

	// Exactly-once: each response channel is buffered(1) and must now be
	// empty — a second resolve would have been visible here.
	for i, ch := range resps {
		select {
		case res := <-ch:
			t.Fatalf("request %d resolved twice; second result: %+v", i, res)
		default:
		}
	}
	st := s.Stats()
	if st.StalledPasses != 1 || st.TimedOutBatches != 1 || st.WorkerRespawns != 1 {
		t.Fatalf("stall accounting: stalls=%d timeouts=%d respawns=%d, want 1/1/1",
			st.StalledPasses, st.TimedOutBatches, st.WorkerRespawns)
	}
	if st.Completed != BatchSize || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultHammer is the acceptance hammer: 10k operations at a 1e-3
// per-lane per-pass fault rate; not one corrupted plaintext may escape and
// every request must resolve exactly once. ~minutes of host time, so it
// only runs when PHIOPENSSL_FAULTS=1 (make faults).
func TestFaultHammer(t *testing.T) {
	if os.Getenv("PHIOPENSSL_FAULTS") == "" {
		t.Skip("set PHIOPENSSL_FAULTS=1 (make faults) to run the 10k-op fault hammer")
	}
	const n = 10000
	nc := 64
	cs, want, _ := perOpAnswers(t, testKey, nc, 300)

	// Convert the per-lane per-pass target rate into the injector's
	// per-instruction rate using the measured instruction count of one
	// verified pass for this key size on the resolved backend.
	kind := Config{}.withDefaults().Backend
	instr := instrPerVerifiedPass(t, testKey, kind)
	rate := faultsim.PerInstrRate(1e-3, uint64(instr))
	t.Logf("backend %s: verified pass = %d corruptible instructions; per-instruction flip rate %.3g",
		kind, instr, rate)

	s, err := New(Config{
		Workers:      4,
		QueueDepth:   8,
		FillDeadline: 50 * time.Millisecond,
		Resilience: Resilience{
			Seed: 11,
			Faults: &faultsim.Config{
				Seed:         13,
				LaneFlipRate: rate,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	type outcome struct {
		idx int
		res Result
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(context.Background(), testKey, cs[i%nc])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		go func(i int, ch <-chan Result) { results <- outcome{i, <-ch} }(i, ch)
	}
	escaped := 0
	for k := 0; k < n; k++ {
		o := <-results
		if o.res.Err != nil {
			t.Fatalf("request %d failed: %v", o.idx, o.res.Err)
		}
		if !o.res.M.Equal(want[o.idx%nc]) {
			escaped++
			t.Errorf("request %d: CORRUPTED PLAINTEXT ESCAPED (attempts=%d fallback=%v)",
				o.idx, o.res.Attempts, o.res.Fallback)
		}
	}
	s.Close()
	st := s.Stats()
	t.Logf("hammer stats: %s", st.String())
	if escaped > 0 {
		t.Fatalf("%d corrupted plaintexts escaped the verifier", escaped)
	}
	if st.Completed != n || st.Failed != 0 {
		t.Fatalf("exactly-once violated: %+v", st)
	}
	if st.FaultsDetected == 0 {
		t.Fatalf("no faults detected across %d passes at rate %.3g — injector not wired?", st.Batches, rate)
	}
}
