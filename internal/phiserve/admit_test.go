package phiserve

import (
	"context"
	"errors"
	"testing"
	"time"

	"phiopenssl/internal/bn"
	"phiopenssl/internal/faultsim"
)

// TestSubmitRejectsDeadOnArrival: a canceled context or an already-passed
// deadline is rejected at the door — the request never occupies a lane and
// never reaches the pool.
func TestSubmitRejectsDeadOnArrival(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	defer s.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(canceled, testKey, bn.One()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v, want context.Canceled", err)
	}

	past, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := s.Submit(past, testKey, bn.One()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: %v, want context.DeadlineExceeded", err)
	}
	if _, err := s.Do(past, testKey, bn.One()); err == nil {
		t.Fatal("Do with expired ctx succeeded")
	}

	// An explicit SLO deadline in the past, on a live context: the typed
	// sentinel, counted as an expired lane.
	_, err = s.SubmitWith(context.Background(), testKey, bn.One(),
		SubmitOpts{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("past deadline: %v, want ErrDeadlineExceeded", err)
	}

	st := s.Stats()
	if st.Submitted != 0 || st.Batches != 0 {
		t.Fatalf("dead-on-arrival work entered the server: %+v", st)
	}
	if st.ExpiredLanes != 1 {
		t.Fatalf("ExpiredLanes = %d, want 1", st.ExpiredLanes)
	}
}

// TestCanceledLanesDroppedAtSeal is the seal-time checkpoint regression: a
// request whose context is canceled after admission but before its batch
// seals resolves with ErrCanceled, is counted, and never reaches the pool
// (no batch executes when every lane is dead).
func TestCanceledLanesDroppedAtSeal(t *testing.T) {
	s, err := New(Config{Workers: 1, FillDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const n = 3
	chs := make([]<-chan Result, n)
	for i := range chs {
		ch, err := s.Submit(ctx, testKey, bn.One())
		if err != nil {
			t.Fatal(err)
		}
		chs[i] = ch
	}
	cancel() // all three lanes die inside the fill window
	for i, ch := range chs {
		res := <-ch
		if !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("lane %d: %v, want ErrCanceled", i, res.Err)
		}
	}
	st := s.Stats()
	if st.CanceledLanes != n {
		t.Fatalf("CanceledLanes = %d, want %d", st.CanceledLanes, n)
	}
	if st.Batches != 0 {
		t.Fatalf("a fully-dead batch executed: %+v", st)
	}
	if st.Failed != n {
		t.Fatalf("Failed = %d, want %d", st.Failed, n)
	}
}

// TestOverflowCapSheds: once the dispatch queue and the overflow list
// behind it are both full, further sealed batches are shed at enqueue with
// ErrOverloaded instead of growing the overflow without bound.
func TestOverflowCapSheds(t *testing.T) {
	stalls := make([]faultsim.PassOutcome, 16)
	for i := range stalls {
		stalls[i] = faultsim.PassStall
	}
	s, err := New(Config{
		Workers:      1,
		QueueDepth:   2,
		OverflowCap:  1,
		FillDeadline: 25 * time.Millisecond,
		Resilience: Resilience{
			// ExecTimeout stays 0: the stalled worker parks until Close,
			// keeping its batch pinned so the queue stays saturated.
			BreakerThreshold: 2, // never trip; degraded mode would bypass batching
			Faults:           &faultsim.Config{Seed: 1, Script: stalls},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())

	submitN := func(n int) []<-chan Result {
		t.Helper()
		out := make([]<-chan Result, n)
		for i := range out {
			ch, err := s.Submit(context.Background(), testKey, bn.One())
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			out[i] = ch
		}
		return out
	}
	waitFor := func(what string, cond func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(s.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats: %+v", what, s.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Batch 1 stalls the lone worker; batches 2 and 3 fill the queue;
	// batch 4 parks on the overflow list, reaching the cap of 1.
	live := submitN(BatchSize)
	waitFor("worker stall", func(st Stats) bool { return st.StalledPasses >= 1 })
	live = append(live, submitN(3*BatchSize)...)
	waitFor("overflow parked", func(st Stats) bool { return st.OverflowBatches >= 1 })

	// Batch 5 finds queue and overflow both full: its lanes shed.
	shedChs := submitN(BatchSize)
	for i, ch := range shedChs {
		if res := <-ch; !errors.Is(res.Err, ErrOverloaded) {
			t.Fatalf("shed lane %d: %v, want ErrOverloaded", i, res.Err)
		}
	}

	// Close releases the parked worker; the four admitted batches drain.
	s.Close()
	for i, ch := range live {
		if res := <-ch; res.Err != nil || !res.M.Equal(bn.One()) {
			t.Fatalf("admitted lane %d: %+v", i, res)
		}
	}
	st := s.Stats()
	if st.OverflowDropped != BatchSize {
		t.Fatalf("OverflowDropped = %d, want %d", st.OverflowDropped, BatchSize)
	}
	if st.Completed != int64(len(live)) || st.Failed != BatchSize {
		t.Fatalf("drain accounting wrong: %+v", st)
	}
}
