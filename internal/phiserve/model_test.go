package phiserve

import (
	"math/rand"
	"testing"
	"time"

	"phiopenssl/internal/knc"
)

// modelCosts is a synthetic lane-uniform cost table: every fill charges
// the same full-pass price, like the real padded kernel.
func modelCosts(pass float64) [BatchSize + 1]float64 {
	var c [BatchSize + 1]float64
	for f := 1; f <= BatchSize; f++ {
		c[f] = pass
	}
	return c
}

func testModel() LoadModel {
	return LoadModel{Machine: knc.Default(), Workers: 8, CostPerFill: modelCosts(2e6)}
}

func TestSimulateValidation(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewSource(1))
	if _, err := m.Simulate(rng, 0, 100, time.Millisecond); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := m.Simulate(rng, 10, 0, time.Millisecond); err == nil {
		t.Fatal("zero load accepted")
	}
	bad := m
	bad.CostPerFill[9] = 0
	if _, err := bad.Simulate(rng, 10, 100, time.Millisecond); err == nil {
		t.Fatal("unmeasured fill cost accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := testModel()
	a, err := m.Simulate(rand.New(rand.NewSource(42)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(rand.New(rand.NewSource(42)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := m.Simulate(rand.New(rand.NewSource(43)), 2000, 5000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical points")
	}
}

// TestSimulateFillTracksLoad: heavy traffic fills every lane, starved
// traffic with a short deadline dispatches near-singleton batches.
func TestSimulateFillTracksLoad(t *testing.T) {
	m := testModel()
	// One full pass takes latency(8 workers, 2e6 cycles); offer requests
	// far faster than 16 per pass.
	pass := m.Machine.Latency(m.Workers, m.CostPerFill[BatchSize])
	heavy, err := m.Simulate(rand.New(rand.NewSource(7)), 4000, 200*BatchSize/pass, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanFill < 15 {
		t.Fatalf("heavy load mean fill %.2f, want ~16", heavy.MeanFill)
	}
	// Starved: mean inter-arrival 100x the deadline → batches dispatch
	// alone.
	light, err := m.Simulate(rand.New(rand.NewSource(7)), 400, 10, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if light.MeanFill > 1.5 {
		t.Fatalf("starved load mean fill %.2f, want ~1", light.MeanFill)
	}
	// Lane-uniform pass cost: fuller batches amortize to cheaper ops.
	if heavy.CyclesPerOp >= light.CyclesPerOp {
		t.Fatalf("full batches cost %.0f cycles/op, singletons %.0f; batching should amortize",
			heavy.CyclesPerOp, light.CyclesPerOp)
	}
}

// TestSimulateDeadlineTradeoff: at moderate load, stretching the fill
// deadline buys fill (throughput) and pays latency — the A6 knob.
func TestSimulateDeadlineTradeoff(t *testing.T) {
	m := testModel()
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	// Moderate load: a few arrivals per short deadline.
	short, err := m.Simulate(rngA, 3000, 5000, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.Simulate(rngB, 3000, 5000, 16*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if long.MeanFill <= short.MeanFill {
		t.Fatalf("longer deadline fill %.2f not above shorter %.2f", long.MeanFill, short.MeanFill)
	}
	if long.CyclesPerOp >= short.CyclesPerOp {
		t.Fatalf("longer deadline cycles/op %.0f not below shorter %.0f", long.CyclesPerOp, short.CyclesPerOp)
	}
	if long.MeanLatency <= short.MeanLatency {
		t.Fatalf("longer deadline latency %v not above shorter %v", long.MeanLatency, short.MeanLatency)
	}
}

func TestSimulateSanity(t *testing.T) {
	m := testModel()
	pt, err := m.Simulate(rand.New(rand.NewSource(3)), 1000, 20000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Requests != 1000 || pt.Offered != 20000 || pt.FillDeadline != time.Millisecond {
		t.Fatalf("point echo wrong: %+v", pt)
	}
	var batches, reqs int
	for f := 1; f <= BatchSize; f++ {
		batches += pt.FillHist[f]
		reqs += f * pt.FillHist[f]
	}
	if reqs != 1000 || batches < 1000/BatchSize {
		t.Fatalf("fill histogram inconsistent: %v", pt.FillHist)
	}
	if pt.FillHist[0] != 0 {
		t.Fatal("zero-fill batch recorded")
	}
	if pt.Throughput <= 0 || pt.Utilization <= 0 || pt.Utilization > 1 {
		t.Fatalf("implausible throughput/utilization: %+v", pt)
	}
	if pt.P50Latency > pt.P99Latency || pt.MeanLatency <= 0 {
		t.Fatalf("latency ordering wrong: %+v", pt)
	}
	// Every request waits at least one kernel pass.
	minPass := time.Duration(m.Machine.Latency(m.Workers, m.CostPerFill[1]) * float64(time.Second))
	if pt.P50Latency < minPass {
		t.Fatalf("p50 %v below a single pass %v", pt.P50Latency, minPass)
	}
}
