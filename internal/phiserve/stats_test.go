package phiserve

import (
	"math"
	"testing"

	"phiopenssl/internal/knc"
	"phiopenssl/internal/phiwork"
	"phiopenssl/internal/telemetry"
)

// TestStatsSnapshotZeroCompleted pins the division edge cases: a snapshot
// with nothing completed — taken before the first resolve, or after a run
// where every request failed — reports 0 for every per-op ratio, never
// NaN or Inf.
func TestStatsSnapshotZeroCompleted(t *testing.T) {
	a := newStatsAcc(telemetry.NewRegistry(), nil)
	check := func(st Stats) {
		t.Helper()
		for _, v := range []float64{st.CyclesPerOp, st.SimThroughput, st.MeanSimLatency} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ratio is NaN/Inf with Completed==0: %+v", st)
			}
			if v != 0 {
				t.Fatalf("ratio nonzero with Completed==0: %+v", st)
			}
		}
	}

	// Fresh accumulator: nothing happened at all.
	check(a.snapshot(Config{}, 0, 0, 0, breakerClosed, 0))

	// Work happened but nothing completed: submissions all failed, and a
	// pass executed whose lanes were all answered elsewhere (served == 0).
	a.submitted.Add(3)
	a.failed.Add(3)
	a.recordBatch(phiwork.KindRSAPrivate, 3, 0, 5000, 0.25, knc.PhaseCycles{})
	st := a.snapshot(Config{}, 0, 0, 0, breakerClosed, 0)
	check(st)
	if st.Batches != 1 || st.MeanFill != 3 {
		t.Fatalf("batch accounting broken: %+v", st)
	}
	if st.FillHist[2] != 1 {
		t.Fatalf("fill 3 not reconstructed from the histogram: %v", st.FillHist)
	}
}

// TestServerStatsBeforeTraffic: a freshly built server hands out a sane
// all-zero snapshot (the metrics endpoint can be scraped before the first
// request arrives).
func TestServerStatsBeforeTraffic(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Submitted != 0 || st.Completed != 0 || st.Batches != 0 {
		t.Fatalf("fresh server snapshot: %+v", st)
	}
	if math.IsNaN(st.CyclesPerOp) || math.IsNaN(st.MeanSimLatency) || math.IsNaN(st.SimThroughput) {
		t.Fatalf("fresh server snapshot has NaN ratios: %+v", st)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("fresh server breaker state %q", st.BreakerState)
	}
}
