package phiopenssl

import (
	"io"
	"net/http"

	"phiopenssl/internal/telemetry"
)

// Telemetry bundles the two observability sinks a BatchServer can emit
// into: a lock-free metrics registry (counters, gauges, log-bucketed
// histograms with Prometheus-text and JSON exposition) and an optional
// per-request trace recorder producing Chrome trace-event JSON viewable
// in Perfetto. Pass one in BatchServerConfig.Telemetry to share a
// registry across servers or to enable tracing; a server built without
// one still keeps full metrics on a private registry, reachable through
// BatchServer.Telemetry().
type Telemetry = telemetry.Telemetry

// TelemetryRegistry is the metrics half of a Telemetry bundle.
type TelemetryRegistry = telemetry.Registry

// TelemetryTracer is the trace-recorder half of a Telemetry bundle.
type TelemetryTracer = telemetry.Tracer

// NewTelemetry returns a Telemetry with a metrics registry and no tracer
// (metrics only — the zero-overhead default for production serving).
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTelemetryWithTrace returns a Telemetry that additionally records a
// bounded in-memory trace of up to capacity events (capacity <= 0 selects
// the default of 262144). Export the buffer with WriteTrace or the
// /trace endpoint of TelemetryHandler and open it in
// https://ui.perfetto.dev.
func NewTelemetryWithTrace(capacity int) *Telemetry {
	return telemetry.NewWithTrace(capacity)
}

// TelemetryHandler returns an http.Handler exposing t's live
// observability surface: /metrics (Prometheus text), /vars (JSON),
// /trace (Chrome trace-event JSON) and /debug/pprof/.
func TelemetryHandler(t *Telemetry) http.Handler { return telemetry.Handler(t) }

// WriteMetrics writes t's registry in Prometheus text exposition format.
func WriteMetrics(w io.Writer, t *Telemetry) error {
	return t.Reg().WritePrometheus(w)
}

// WriteTrace writes t's buffered trace as Chrome trace-event JSON.
func WriteTrace(w io.Writer, t *Telemetry) error {
	return t.Trace().Export(w)
}
