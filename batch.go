package phiopenssl

import (
	"phiopenssl/internal/knc"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/vpu"
)

// RSABatchSize is the number of ciphertexts processed per batch private
// operation (one per vector lane).
const RSABatchSize = rsakit.BatchSize

// RSAPrivateBatch decrypts sixteen ciphertexts under one key with the
// batch (lane-per-operation) vector kernels — the throughput-oriented
// alternative to the per-operation PhiOpenSSL engine (see ablation A4 in
// EXPERIMENTS.md). It returns the plaintexts and the total simulated KNC
// cycles of the batch pass; divide by RSABatchSize for the amortized
// per-operation cost. It is a thin wrapper over the partial-batch path
// (RSAPrivateBatchN) with all sixteen lanes live.
func RSAPrivateBatch(key *PrivateKey, cs *[RSABatchSize]Nat) ([RSABatchSize]Nat, float64, error) {
	res, cycles, err := RSAPrivateBatchN(key, cs[:])
	if err != nil {
		return [RSABatchSize]Nat{}, 0, err
	}
	var out [RSABatchSize]Nat
	copy(out[:], res)
	return out, cycles, nil
}

// RSAPrivateBatchN decrypts 1..RSABatchSize ciphertexts under one key in
// a single kernel pass, padding the unused lanes with a duplicated
// operand. A partial batch therefore costs one full pass — the charged
// cycles do not shrink with the live-lane count — which is exactly the
// waste the streaming scheduler's fill deadline trades against latency.
func RSAPrivateBatchN(key *PrivateKey, cs []Nat) ([]Nat, float64, error) {
	u := vpu.New()
	res, err := rsakit.PrivateOpBatchN(u, key, cs)
	if err != nil {
		return nil, 0, err
	}
	return res, knc.KNCVectorCosts.VectorCycles(u.Counts()), nil
}
