package phiopenssl

import (
	"phiopenssl/internal/knc"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/vpu"
)

// RSABatchSize is the number of ciphertexts processed per batch private
// operation (one per vector lane).
const RSABatchSize = rsakit.BatchSize

// ErrFaultDetected marks a private-key result that failed the Bellcore
// re-encryption check; the corrupted plaintext is withheld because
// releasing it would leak a factor of N. Match with errors.Is.
var ErrFaultDetected = rsakit.ErrFaultDetected

// BackendKind selects how the batch kernels execute: interpreted and
// cycle-exact (BackendSim) or direct limb arithmetic with calibrated
// cycle charging (BackendDirect). Both produce bit-identical plaintexts
// and identical simulated-cycle figures for the batch path; direct is
// several times faster in host wall time and is the serving default.
type BackendKind = vpu.BackendKind

// Backend kinds for BatchServerConfig.Backend and ParseBackend.
const (
	// BackendDefault lets the serving layer pick (resolves to
	// BackendDirect, overridable via the PHIOPENSSL_BACKEND environment
	// variable).
	BackendDefault = vpu.BackendDefault
	// BackendSim is the interpreted, cycle-exact vector unit.
	BackendSim = vpu.BackendSim
	// BackendDirect is the calibrated direct-arithmetic path.
	BackendDirect = vpu.BackendDirect
)

// ParseBackend maps the flag/env spellings "sim" and "direct" (and "",
// meaning default) to a BackendKind; ok is false for anything else.
func ParseBackend(s string) (BackendKind, bool) { return vpu.ParseBackend(s) }

// RSAPrivateBatch decrypts sixteen ciphertexts under one key with the
// batch (lane-per-operation) vector kernels — the throughput-oriented
// alternative to the per-operation PhiOpenSSL engine (see ablation A4 in
// EXPERIMENTS.md). Execution is verified: each lane is re-encrypted and
// checked against its ciphertext before release (the Bellcore
// countermeasure), and a lane that fails gets a zero Nat plus an entry
// wrapping ErrFaultDetected in the lane-aligned error slice (all-nil on a
// clean pass). The cycle figure is the total simulated KNC cost of the
// batch including verification; divide by RSABatchSize for the amortized
// per-operation cost. It is a thin wrapper over the partial-batch path
// (RSAPrivateBatchN) with all sixteen lanes live.
func RSAPrivateBatch(key *PrivateKey, cs *[RSABatchSize]Nat) ([RSABatchSize]Nat, []error, float64, error) {
	res, laneErrs, cycles, err := RSAPrivateBatchN(key, cs[:])
	if err != nil {
		return [RSABatchSize]Nat{}, nil, 0, err
	}
	var out [RSABatchSize]Nat
	copy(out[:], res)
	return out, laneErrs, cycles, nil
}

// RSAPrivateBatchN decrypts 1..RSABatchSize ciphertexts under one key in
// a single verified kernel pass, padding the unused lanes with a
// duplicated operand. A partial batch therefore costs one full pass — the
// charged cycles do not shrink with the live-lane count — which is exactly
// the waste the streaming scheduler's fill deadline trades against
// latency. The per-lane error slice is lane-aligned with cs: nil for clean
// lanes, an error wrapping ErrFaultDetected for lanes whose result failed
// the re-encryption check (such lanes return a zero Nat, never a corrupted
// plaintext). The final error is batch-level (malformed inputs).
//
// Execution runs on the direct backend (kernel results and charged cycles
// are identical to the sim's by the calibration contract — see DESIGN.md
// "Backends"); use RSAPrivateBatchOn to pick the backend explicitly.
func RSAPrivateBatchN(key *PrivateKey, cs []Nat) ([]Nat, []error, float64, error) {
	return RSAPrivateBatchOn(BackendDirect, key, cs)
}

// RSAPrivateBatchOn is RSAPrivateBatchN on an explicitly chosen backend.
func RSAPrivateBatchOn(kind BackendKind, key *PrivateKey, cs []Nat) ([]Nat, []error, float64, error) {
	be := vpu.NewBackend(kind)
	res, laneErrs, err := rsakit.PrivateOpBatchVerifiedN(be, key, cs)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, laneErrs, knc.KNCVectorCosts.VectorCycles(be.Counts()), nil
}
