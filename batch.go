package phiopenssl

import (
	"phiopenssl/internal/knc"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/vpu"
)

// RSABatchSize is the number of ciphertexts processed per batch private
// operation (one per vector lane).
const RSABatchSize = rsakit.BatchSize

// ErrFaultDetected marks a private-key result that failed the Bellcore
// re-encryption check; the corrupted plaintext is withheld because
// releasing it would leak a factor of N. Match with errors.Is.
var ErrFaultDetected = rsakit.ErrFaultDetected

// RSAPrivateBatch decrypts sixteen ciphertexts under one key with the
// batch (lane-per-operation) vector kernels — the throughput-oriented
// alternative to the per-operation PhiOpenSSL engine (see ablation A4 in
// EXPERIMENTS.md). Execution is verified: each lane is re-encrypted and
// checked against its ciphertext before release (the Bellcore
// countermeasure), and a lane that fails gets a zero Nat plus an entry
// wrapping ErrFaultDetected in the lane-aligned error slice (all-nil on a
// clean pass). The cycle figure is the total simulated KNC cost of the
// batch including verification; divide by RSABatchSize for the amortized
// per-operation cost. It is a thin wrapper over the partial-batch path
// (RSAPrivateBatchN) with all sixteen lanes live.
func RSAPrivateBatch(key *PrivateKey, cs *[RSABatchSize]Nat) ([RSABatchSize]Nat, []error, float64, error) {
	res, laneErrs, cycles, err := RSAPrivateBatchN(key, cs[:])
	if err != nil {
		return [RSABatchSize]Nat{}, nil, 0, err
	}
	var out [RSABatchSize]Nat
	copy(out[:], res)
	return out, laneErrs, cycles, nil
}

// RSAPrivateBatchN decrypts 1..RSABatchSize ciphertexts under one key in
// a single verified kernel pass, padding the unused lanes with a
// duplicated operand. A partial batch therefore costs one full pass — the
// charged cycles do not shrink with the live-lane count — which is exactly
// the waste the streaming scheduler's fill deadline trades against
// latency. The per-lane error slice is lane-aligned with cs: nil for clean
// lanes, an error wrapping ErrFaultDetected for lanes whose result failed
// the re-encryption check (such lanes return a zero Nat, never a corrupted
// plaintext). The final error is batch-level (malformed inputs).
func RSAPrivateBatchN(key *PrivateKey, cs []Nat) ([]Nat, []error, float64, error) {
	u := vpu.New()
	res, laneErrs, err := rsakit.PrivateOpBatchVerifiedN(u, key, cs)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, laneErrs, knc.KNCVectorCosts.VectorCycles(u.Counts()), nil
}
