package phiopenssl

import (
	"phiopenssl/internal/knc"
	"phiopenssl/internal/rsakit"
	"phiopenssl/internal/vpu"
)

// RSABatchSize is the number of ciphertexts processed per batch private
// operation (one per vector lane).
const RSABatchSize = rsakit.BatchSize

// RSAPrivateBatch decrypts sixteen ciphertexts under one key with the
// batch (lane-per-operation) vector kernels — the throughput-oriented
// alternative to the per-operation PhiOpenSSL engine (see ablation A4 in
// EXPERIMENTS.md). It returns the plaintexts and the total simulated KNC
// cycles of the batch pass; divide by RSABatchSize for the amortized
// per-operation cost.
func RSAPrivateBatch(key *PrivateKey, cs *[RSABatchSize]Nat) ([RSABatchSize]Nat, float64, error) {
	u := vpu.New()
	res, err := rsakit.PrivateOpBatch(u, key, cs)
	if err != nil {
		return [RSABatchSize]Nat{}, 0, err
	}
	return res, knc.KNCVectorCosts.VectorCycles(u.Counts()), nil
}
