package phiopenssl_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"phiopenssl"
	"phiopenssl/internal/bench"
)

func TestFacadeRSAPrivateBatchN(t *testing.T) {
	key := bench.FixedKey(512)
	eng := phiopenssl.NewEngine(phiopenssl.EngineOpenSSL)
	msgs := make([]phiopenssl.Nat, 5)
	cts := make([]phiopenssl.Nat, 5)
	for i := range msgs {
		msgs[i] = phiopenssl.NatFromUint64(uint64(2000 + i))
		c, err := phiopenssl.RSAPublic(eng, &key.PublicKey, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = c
	}
	res, laneErrs, cycles, err := phiopenssl.RSAPrivateBatchN(key, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || len(laneErrs) != 5 || cycles <= 0 {
		t.Fatalf("got %d results, %d lane errors, %.0f cycles", len(res), len(laneErrs), cycles)
	}
	for i := range res {
		if laneErrs[i] != nil {
			t.Fatalf("lane %d error on clean pass: %v", i, laneErrs[i])
		}
		if !res[i].Equal(msgs[i]) {
			t.Fatalf("lane %d mismatch", i)
		}
	}

	// The full-batch wrapper must charge the same pass as sixteen live
	// lanes through the partial path.
	var full [phiopenssl.RSABatchSize]phiopenssl.Nat
	for i := range full {
		c, err := phiopenssl.RSAPublic(eng, &key.PublicKey, phiopenssl.NatFromUint64(uint64(3000+i)))
		if err != nil {
			t.Fatal(err)
		}
		full[i] = c
	}
	_, _, viaWrapper, err := phiopenssl.RSAPrivateBatch(key, &full)
	if err != nil {
		t.Fatal(err)
	}
	_, _, viaN, err := phiopenssl.RSAPrivateBatchN(key, full[:])
	if err != nil {
		t.Fatal(err)
	}
	if viaWrapper != viaN {
		t.Fatalf("wrapper charged %.0f cycles, partial path %.0f", viaWrapper, viaN)
	}
}

func TestFacadeBatchServer(t *testing.T) {
	key := bench.FixedKey(512)
	eng := phiopenssl.NewEngine(phiopenssl.EngineOpenSSL)

	srv, err := phiopenssl.NewBatchServer(phiopenssl.BatchServerConfig{
		Workers:      2,
		FillDeadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), key, phiopenssl.NatFromUint64(1)); !errors.Is(err, phiopenssl.ErrServerNotStarted) {
		t.Fatalf("Submit before Start: %v", err)
	}
	srv.Start(context.Background())

	const n = 20
	msgs := make([]phiopenssl.Nat, n)
	resps := make([]<-chan phiopenssl.BatchResult, n)
	for i := range msgs {
		msgs[i] = phiopenssl.NatFromUint64(uint64(5000 + i))
		c, err := phiopenssl.RSAPublic(eng, &key.PublicKey, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		ch, err := srv.Submit(context.Background(), key, c)
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = ch
	}
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(msgs[i]) {
			t.Fatalf("request %d: %+v", i, res)
		}
	}
	srv.Close()
	if _, err := srv.Submit(context.Background(), key, phiopenssl.NatFromUint64(1)); !errors.Is(err, phiopenssl.ErrServerClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}

	st := srv.Stats()
	if st.Submitted != n || st.Completed != n || st.Failed != 0 || st.Batches < 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.CyclesPerOp <= 0 || st.SimThroughput <= 0 {
		t.Fatalf("no simulated costs reported: %+v", st)
	}
	if st.BreakerState != "closed" || st.FaultsDetected != 0 || st.FallbackOps != 0 {
		t.Fatalf("clean run shows fault activity: %+v", st)
	}
}

// TestFacadeBatchServerResilience drives the resilience surface through
// the public facade: a scripted transient kernel failure must be retried
// and healed with correct plaintexts and visible counters.
func TestFacadeBatchServerResilience(t *testing.T) {
	key := bench.FixedKey(512)
	eng := phiopenssl.NewEngine(phiopenssl.EngineOpenSSL)

	srv, err := phiopenssl.NewBatchServer(phiopenssl.BatchServerConfig{
		Workers:      1,
		FillDeadline: 5 * time.Millisecond,
		Resilience: phiopenssl.BatchServerResilience{
			MaxRetries: 2,
			Seed:       1,
			Faults: &phiopenssl.FaultInjection{
				Seed:   2,
				Script: []phiopenssl.FaultPassOutcome{phiopenssl.FaultPassKernelFail},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())

	const n = 8
	msgs := make([]phiopenssl.Nat, n)
	resps := make([]<-chan phiopenssl.BatchResult, n)
	for i := range msgs {
		msgs[i] = phiopenssl.NatFromUint64(uint64(7000 + i))
		c, err := phiopenssl.RSAPublic(eng, &key.PublicKey, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		ch, err := srv.Submit(context.Background(), key, c)
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = ch
	}
	sawRetry := false
	for i, ch := range resps {
		res := <-ch
		if res.Err != nil || !res.M.Equal(msgs[i]) {
			t.Fatalf("request %d: %+v", i, res)
		}
		if res.Attempts > 0 {
			sawRetry = true
		}
	}
	srv.Close()
	if !sawRetry {
		t.Fatal("scripted kernel failure left no Attempts trace on any result")
	}
	st := srv.Stats()
	if st.KernelFaults != 1 || st.Retries == 0 {
		t.Fatalf("kernel-fault accounting: %+v", st)
	}
	if st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFacadeBatchBackendsAgree: the explicit-backend batch entry point
// must return identical plaintexts and identical cycle figures on both
// backends (the calibration contract surfaced at the facade).
func TestFacadeBatchBackendsAgree(t *testing.T) {
	key := bench.FixedKey(512)
	eng := phiopenssl.NewEngine(phiopenssl.EngineOpenSSL)
	msgs := make([]phiopenssl.Nat, phiopenssl.RSABatchSize)
	cts := make([]phiopenssl.Nat, phiopenssl.RSABatchSize)
	for i := range msgs {
		msgs[i] = phiopenssl.NatFromUint64(uint64(7000 + i))
		c, err := phiopenssl.RSAPublic(eng, &key.PublicKey, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = c
	}
	simRes, _, simCycles, err := phiopenssl.RSAPrivateBatchOn(phiopenssl.BackendSim, key, cts)
	if err != nil {
		t.Fatal(err)
	}
	dirRes, _, dirCycles, err := phiopenssl.RSAPrivateBatchOn(phiopenssl.BackendDirect, key, cts)
	if err != nil {
		t.Fatal(err)
	}
	if simCycles != dirCycles {
		t.Fatalf("cycles diverge: sim %.0f direct %.0f", simCycles, dirCycles)
	}
	for i := range simRes {
		if !simRes[i].Equal(msgs[i]) || !dirRes[i].Equal(msgs[i]) {
			t.Fatalf("lane %d mismatch across backends", i)
		}
	}

	if _, ok := phiopenssl.ParseBackend("direct"); !ok {
		t.Fatal(`ParseBackend("direct") rejected`)
	}
	if _, ok := phiopenssl.ParseBackend("bogus"); ok {
		t.Fatal(`ParseBackend("bogus") accepted`)
	}
}
