package phiopenssl

import "phiopenssl/internal/cert"

// Certificate layer, re-exported from internal/cert: a minimal chain
// format (line-envelope encoding, PKCS#1 v1.5/SHA-256 signatures) for the
// SSL substrate.

type (
	// Certificate binds a subject name to an RSA public key.
	Certificate = cert.Certificate
	// CertTemplate carries the fields of a certificate request.
	CertTemplate = cert.Template
	// CertChain is a leaf-first certificate chain.
	CertChain = cert.Chain
)

// Certificate operations.
var (
	// SignCertificate issues a certificate under an issuer key.
	SignCertificate = cert.Sign
	// SelfSignCertificate issues a root (subject == issuer).
	SelfSignCertificate = cert.SelfSign
	// VerifyCertificateChain verifies a chain against trusted roots.
	VerifyCertificateChain = cert.VerifyChain
	// MarshalCertificate serializes one certificate.
	MarshalCertificate = cert.Marshal
	// UnmarshalCertificate parses one certificate.
	UnmarshalCertificate = cert.Unmarshal
)
