package phiopenssl

import (
	"io"

	"phiopenssl/internal/phitrace"
)

// JourneyRecorder collects per-request journey records — one timeline per
// Submit, accumulating door/route/seal/pass/terminal events as the request
// moves through admission, the fleet router, the batch scheduler and the
// worker pool — and resolves each into a tail-sampled ring: anomalous
// journeys (shed, expired, faulted, stolen, retried, or slower than a
// configurable fraction of their SLO) are always kept, normal completions
// are sampled 1-in-N. It also keeps per-tenant SLO burn-rate gauges
// (phitrace_slo_burn{tenant,window}) and an incident flight recorder that
// snapshots recent journeys plus registry state when something breaks
// (breaker open, brownout, fleet degraded, shed storm).
//
// Wire one recorder through every layer: BatchServerConfig.Journeys,
// FleetConfig.Journeys and AdmissionConfig.Journeys, plus
// Telemetry.Journeys to serve /journeys and /incidents over HTTP.
type JourneyRecorder = phitrace.Recorder

// JourneyConfig parameterizes a JourneyRecorder: ring size, sample rate,
// SLO-fraction anomaly threshold, burn windows and budget, incident buffer
// bounds, and the telemetry bundle its gauges register into.
type JourneyConfig = phitrace.Config

// Journey is one request's journey record.
type Journey = phitrace.Journey

// JourneyIncident is one incident flight-recorder snapshot.
type JourneyIncident = phitrace.Incident

// JourneyCounts is the recorder's sampling ledger: resolved, kept
// (anomalous and sampled), discarded, duplicate terminals, incidents.
type JourneyCounts = phitrace.Counts

// NewJourneyRecorder builds a journey recorder. Set cfg.Telemetry to the
// run's Telemetry bundle so the burn gauges and sampling counters land in
// its registry and incidents mark the Chrome trace; then also set
// Telemetry.Journeys = recorder to expose /journeys and /incidents.
func NewJourneyRecorder(cfg JourneyConfig) *JourneyRecorder {
	return phitrace.New(cfg)
}

// WriteJourneys writes r's kept journey ring as one JSON object (the
// /journeys payload).
func WriteJourneys(w io.Writer, r *JourneyRecorder) error {
	return r.WriteJourneys(w)
}

// WriteIncidents writes r's incident buffer as one JSON object (the
// /incidents payload).
func WriteIncidents(w io.Writer, r *JourneyRecorder) error {
	return r.WriteIncidents(w)
}
